//! Versions, version edits and the version set (MANIFEST machinery).
//!
//! A [`Version`] is an immutable snapshot of which sstables live at which
//! level. Mutations (memtable flushes, compactions) are described by
//! [`VersionEdit`]s which are appended to the MANIFEST log and applied to
//! produce the next version — the standard LevelDB descriptor scheme that
//! PebblesDB inherits (and extends with guard metadata in the `pebblesdb`
//! crate).

use std::path::PathBuf;
use std::sync::{Arc, Weak};

use pebblesdb_common::coding::put_length_prefixed_slice;
use pebblesdb_common::coding::{put_varint32, put_varint64, Decoder};
use pebblesdb_common::filename::{current_file_name, descriptor_file_name};
use pebblesdb_common::key::{compare_internal_keys, InternalKey, LookupKey, SequenceNumber};
use pebblesdb_common::key::{parse_internal_key, ValueType};
use pebblesdb_common::vlog::{LookupValue, ValuePointer};
use pebblesdb_common::{Error, ReadOptions, Result, StoreOptions};
use pebblesdb_engine::policy::{VersionMeta, VersionSetOps};
use pebblesdb_env::Env;
use pebblesdb_sstable::TableCache;
use pebblesdb_wal::{LogReader, LogWriter};

pub use pebblesdb_engine::meta::{FileMetaData, FileMetaDataEdit};

/// A record of changes to the file set, persisted in the MANIFEST.
#[derive(Debug, Default, Clone)]
pub struct VersionEdit {
    /// New write-ahead log number (older logs are no longer needed).
    pub log_number: Option<u64>,
    /// Next file number to allocate.
    pub next_file_number: Option<u64>,
    /// Last sequence number.
    pub last_sequence: Option<SequenceNumber>,
    /// Files removed: `(level, file number)`.
    pub deleted_files: Vec<(usize, u64)>,
    /// Files added: `(level, metadata)`.
    pub new_files: Vec<(usize, FileMetaDataEdit)>,
}

const TAG_LOG_NUMBER: u32 = 1;
const TAG_NEXT_FILE_NUMBER: u32 = 2;
const TAG_LAST_SEQUENCE: u32 = 3;
const TAG_DELETED_FILE: u32 = 4;
const TAG_NEW_FILE: u32 = 5;

impl VersionEdit {
    /// Serialises the edit for the MANIFEST log.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint32(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint32(&mut out, TAG_NEXT_FILE_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint32(&mut out, TAG_LAST_SEQUENCE);
            put_varint64(&mut out, v);
        }
        for (level, number) in &self.deleted_files {
            put_varint32(&mut out, TAG_DELETED_FILE);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, *number);
        }
        for (level, file) in &self.new_files {
            put_varint32(&mut out, TAG_NEW_FILE);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, file.number);
            put_varint64(&mut out, file.file_size);
            put_length_prefixed_slice(&mut out, &file.smallest);
            put_length_prefixed_slice(&mut out, &file.largest);
        }
        out
    }

    /// Decodes an edit from a MANIFEST record.
    pub fn decode(data: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        let mut dec = Decoder::new(data);
        while !dec.is_empty() {
            let tag = dec.read_varint32()?;
            match tag {
                TAG_LOG_NUMBER => edit.log_number = Some(dec.read_varint64()?),
                TAG_NEXT_FILE_NUMBER => edit.next_file_number = Some(dec.read_varint64()?),
                TAG_LAST_SEQUENCE => edit.last_sequence = Some(dec.read_varint64()?),
                TAG_DELETED_FILE => {
                    let level = dec.read_varint32()? as usize;
                    let number = dec.read_varint64()?;
                    edit.deleted_files.push((level, number));
                }
                TAG_NEW_FILE => {
                    let level = dec.read_varint32()? as usize;
                    let number = dec.read_varint64()?;
                    let file_size = dec.read_varint64()?;
                    let smallest = dec.read_length_prefixed_slice()?.to_vec();
                    let largest = dec.read_length_prefixed_slice()?.to_vec();
                    edit.new_files.push((
                        level,
                        FileMetaDataEdit {
                            number,
                            file_size,
                            smallest,
                            largest,
                        },
                    ));
                }
                other => {
                    return Err(Error::corruption(format!(
                        "unknown version edit tag {other}"
                    )))
                }
            }
        }
        Ok(edit)
    }

    /// Convenience helper to record a new file.
    pub fn add_file(&mut self, level: usize, file: &FileMetaData) {
        self.new_files.push((
            level,
            FileMetaDataEdit {
                number: file.number,
                file_size: file.file_size,
                smallest: file.smallest.encoded().to_vec(),
                largest: file.largest.encoded().to_vec(),
            },
        ));
    }

    /// Convenience helper to record a deleted file.
    pub fn delete_file(&mut self, level: usize, number: u64) {
        self.deleted_files.push((level, number));
    }
}

/// An immutable snapshot of the files at every level.
#[derive(Debug)]
pub struct Version {
    /// `files[level]` is sorted by smallest key for levels >= 1; level 0 is
    /// ordered newest-file-first (by file number, descending).
    pub files: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// Creates an empty version with `levels` levels.
    pub fn new(levels: usize) -> Self {
        Version {
            files: vec![Vec::new(); levels],
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.files.len()
    }

    /// Total bytes stored at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.files[level].iter().map(|f| f.file_size).sum()
    }

    /// Total number of live files.
    pub fn num_files(&self) -> usize {
        self.files.iter().map(|l| l.len()).sum()
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().flatten().map(|f| f.file_size).sum()
    }

    /// Sizes of every live file.
    pub fn file_sizes(&self) -> Vec<u64> {
        self.files.iter().flatten().map(|f| f.file_size).collect()
    }

    /// All file numbers referenced by this version.
    pub fn live_file_numbers(&self) -> Vec<u64> {
        self.files.iter().flatten().map(|f| f.number).collect()
    }

    /// The files at `level` whose user-key range overlaps `[begin, end]`.
    pub fn overlapping_inputs(
        &self,
        level: usize,
        begin: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Vec<Arc<FileMetaData>> {
        let mut inputs = Vec::new();
        let mut begin = begin.map(|b| b.to_vec());
        let mut end = end.map(|e| e.to_vec());
        let mut restart = true;
        while restart {
            restart = false;
            inputs.clear();
            for file in &self.files[level] {
                if file.overlaps_user_range(begin.as_deref(), end.as_deref()) {
                    // Level-0 files overlap each other, so growing the range
                    // must restart the search to stay transitive.
                    if level == 0 {
                        let fs = file.smallest.user_key();
                        let fl = file.largest.user_key();
                        if begin.as_deref().map(|b| fs < b).unwrap_or(false) {
                            begin = Some(fs.to_vec());
                            restart = true;
                        }
                        if end.as_deref().map(|e| fl > e).unwrap_or(false) {
                            end = Some(fl.to_vec());
                            restart = true;
                        }
                    }
                    inputs.push(Arc::clone(file));
                    if restart {
                        break;
                    }
                }
            }
        }
        inputs
    }

    /// Point lookup: searches level 0 newest-first, then deeper levels.
    ///
    /// Returns `Ok(Some(value))`, `Ok(None)` for "definitely deleted or never
    /// written", and records a seek on the first file probed (for
    /// seek-triggered compaction, reported through the return).
    pub fn get(
        &self,
        read_options: &ReadOptions,
        key: &LookupKey,
        table_cache: &TableCache,
    ) -> Result<Option<LookupValue>> {
        let user_key = key.user_key();
        let snapshot = key.sequence();

        // Level 0: every overlapping file, newest first.
        let mut level0: Vec<&Arc<FileMetaData>> = self.files[0]
            .iter()
            .filter(|f| f.smallest.user_key() <= user_key && user_key <= f.largest.user_key())
            .collect();
        level0.sort_by_key(|f| std::cmp::Reverse(f.number));
        for file in level0 {
            if let Some(result) =
                Self::get_in_file(read_options, file, user_key, snapshot, table_cache)?
            {
                return Ok(result);
            }
        }

        // Deeper levels: the files are disjoint by *internal* key, so binary
        // search with the lookup's internal key (user key + snapshot
        // sequence). Searching by user key alone is wrong for snapshot
        // reads: compaction may split one user key's versions across two
        // adjacent files, and the version visible at the snapshot can sit in
        // the file *after* the one holding the newest versions.
        for level in 1..self.num_levels() {
            let files = &self.files[level];
            if files.is_empty() {
                continue;
            }
            let idx = files.partition_point(|f| {
                compare_internal_keys(f.largest.encoded(), key.internal_key())
                    == std::cmp::Ordering::Less
            });
            if idx >= files.len() {
                continue;
            }
            let file = &files[idx];
            if file.smallest.user_key() > user_key {
                continue;
            }
            if let Some(result) =
                Self::get_in_file(read_options, file, user_key, snapshot, table_cache)?
            {
                return Ok(result);
            }
        }
        Ok(None)
    }

    /// Searches a single file. The outer `Option` is "did this file decide
    /// the outcome"; the inner is the value (None = tombstone).
    fn get_in_file(
        read_options: &ReadOptions,
        file: &Arc<FileMetaData>,
        user_key: &[u8],
        snapshot: SequenceNumber,
        table_cache: &TableCache,
    ) -> Result<Option<Option<LookupValue>>> {
        let table = table_cache.get_table(file.number, file.file_size)?;
        if !table.may_contain_user_key(user_key) {
            return Ok(None);
        }
        let target = LookupKey::new(user_key, snapshot);
        match table.get(read_options, target.internal_key())? {
            Some((found_key, value)) => match parse_internal_key(&found_key) {
                Some(parsed) if parsed.user_key == user_key => match parsed.value_type {
                    ValueType::Value => Ok(Some(Some(LookupValue::Inline(value)))),
                    ValueType::ValuePointer => Ok(Some(Some(LookupValue::Pointer(
                        ValuePointer::decode(&value)?,
                    )))),
                    ValueType::Deletion => Ok(Some(None)),
                },
                _ => Ok(None),
            },
            None => Ok(None),
        }
    }

    /// Human-readable summary of files per level (for debugging and the
    /// `compare_engines` example).
    pub fn level_summary(&self) -> String {
        let counts: Vec<String> = self
            .files
            .iter()
            .enumerate()
            .map(|(level, files)| format!("L{level}:{}", files.len()))
            .collect();
        counts.join(" ")
    }
}

/// Owns the current [`Version`], the MANIFEST log and file-number allocation.
pub struct VersionSet {
    env: Arc<dyn Env>,
    db_path: PathBuf,
    options: StoreOptions,
    current: Arc<Version>,
    live_versions: Vec<Weak<Version>>,
    manifest: Option<LogWriter>,
    manifest_number: u64,
    next_file_number: u64,
    /// Sequence number of the most recent write.
    pub last_sequence: SequenceNumber,
    /// Write-ahead log number whose contents are reflected in `current`.
    pub log_number: u64,
}

impl VersionSet {
    /// Creates a version set for a database directory.
    pub fn new(env: Arc<dyn Env>, db_path: PathBuf, options: StoreOptions) -> Self {
        let levels = options.max_levels;
        VersionSet {
            env,
            db_path,
            options,
            current: Arc::new(Version::new(levels)),
            live_versions: Vec::new(),
            manifest: None,
            manifest_number: 1,
            next_file_number: 2,
            last_sequence: 0,
            log_number: 0,
        }
    }

    /// The current version.
    pub fn current(&mut self) -> Arc<Version> {
        let version = Arc::clone(&self.current);
        self.live_versions.push(Arc::downgrade(&version));
        version
    }

    /// A read-only peek at the current version without registering a pin.
    pub fn current_unpinned(&self) -> &Arc<Version> {
        &self.current
    }

    /// Allocates a new file number.
    pub fn new_file_number(&mut self) -> u64 {
        let number = self.next_file_number;
        self.next_file_number += 1;
        number
    }

    /// Marks `number` as used (during recovery).
    pub fn mark_file_number_used(&mut self, number: u64) {
        if self.next_file_number <= number {
            self.next_file_number = number + 1;
        }
    }

    /// File numbers referenced by the current version or any version still
    /// pinned by an in-flight read.
    pub fn all_live_file_numbers(&mut self) -> Vec<u64> {
        self.live_files_and_pins().0
    }

    /// File numbers referenced by the current version or any pinned version,
    /// plus whether a version *other than* `current` contributed (a read or
    /// cursor still pins it). Both facts come from the same observation of
    /// the pin list — a GC that keeps a pinned version's files must also
    /// learn that a later pass may find more garbage, even if the pin drops
    /// immediately afterwards.
    pub fn live_files_and_pins(&mut self) -> (Vec<u64>, bool) {
        let mut live: Vec<u64> = self.current.live_file_numbers();
        self.live_versions.retain(|weak| weak.strong_count() > 0);
        let mut pinned = false;
        for weak in &self.live_versions {
            if let Some(version) = weak.upgrade() {
                if !Arc::ptr_eq(&version, &self.current) {
                    pinned = true;
                    live.extend(version.live_file_numbers());
                }
            }
        }
        live.sort_unstable();
        live.dedup();
        (live, pinned)
    }

    /// Writes a fresh MANIFEST describing an empty database.
    pub fn create_new(&mut self) -> Result<()> {
        let manifest_number = self.new_file_number();
        let path = descriptor_file_name(&self.db_path, manifest_number);
        let file = self.env.new_writable_file(&path)?;
        let mut writer = LogWriter::new(file);
        let edit = VersionEdit {
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            log_number: Some(self.log_number),
            ..Default::default()
        };
        writer.add_record(&edit.encode())?;
        writer.sync()?;
        self.manifest = Some(writer);
        self.manifest_number = manifest_number;
        self.env.write_string_to_file_sync(
            &current_file_name(&self.db_path),
            format!("MANIFEST-{manifest_number:06}\n").as_bytes(),
        )?;
        Ok(())
    }

    /// Recovers state from the MANIFEST named by `CURRENT`.
    pub fn recover(&mut self) -> Result<()> {
        let current = self
            .env
            .read_file_to_vec(&current_file_name(&self.db_path))?;
        let name = String::from_utf8_lossy(&current);
        let name = name.trim();
        let manifest_number: u64 = name
            .strip_prefix("MANIFEST-")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| Error::corruption("CURRENT does not name a manifest"))?;
        let path = self.db_path.join(name);
        let file = self.env.new_sequential_file(&path)?;
        let mut reader = LogReader::new(file);

        let mut builder = VersionBuilder::new(Version::new(self.options.max_levels));
        while let Some(record) = reader.read_record()? {
            let edit = VersionEdit::decode(&record)?;
            if let Some(v) = edit.log_number {
                self.log_number = v;
            }
            if let Some(v) = edit.next_file_number {
                self.next_file_number = v;
            }
            if let Some(v) = edit.last_sequence {
                self.last_sequence = v;
            }
            builder.apply(&edit);
        }
        self.current = Arc::new(builder.finish());
        self.manifest_number = manifest_number;
        self.mark_file_number_used(manifest_number);

        // Continue appending to a fresh manifest to keep recovery simple.
        self.rewrite_manifest()?;
        Ok(())
    }

    /// Applies `edit` to the current version, logs it and installs the result.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<Arc<Version>> {
        if edit.log_number.is_none() {
            edit.log_number = Some(self.log_number);
        }
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);

        let mut builder = VersionBuilder::from_version(&self.current);
        builder.apply(&edit);
        let next = Arc::new(builder.finish());

        if self.manifest.is_none() {
            self.rewrite_manifest()?;
        }
        if let Some(manifest) = self.manifest.as_mut() {
            manifest.add_record(&edit.encode())?;
            manifest.sync()?;
        }
        if let Some(v) = edit.log_number {
            self.log_number = v;
        }
        self.current = Arc::clone(&next);
        Ok(next)
    }

    /// Writes a new MANIFEST containing a full snapshot of the current state.
    fn rewrite_manifest(&mut self) -> Result<()> {
        let manifest_number = self.new_file_number();
        let path = descriptor_file_name(&self.db_path, manifest_number);
        let file = self.env.new_writable_file(&path)?;
        let mut writer = LogWriter::new(file);

        let mut snapshot = VersionEdit {
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            log_number: Some(self.log_number),
            ..Default::default()
        };
        for (level, files) in self.current.files.iter().enumerate() {
            for file in files {
                snapshot.add_file(level, file);
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.sync()?;
        self.manifest = Some(writer);
        self.manifest_number = manifest_number;
        self.env.write_string_to_file_sync(
            &current_file_name(&self.db_path),
            format!("MANIFEST-{manifest_number:06}\n").as_bytes(),
        )?;
        Ok(())
    }

    /// Returns the level with the highest compaction score, if any level is
    /// over budget. Level 0 is scored by file count, deeper levels by bytes.
    pub fn pick_compaction_level(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for level in 0..self.current.num_levels() - 1 {
            let score = if level == 0 {
                self.current.files[0].len() as f64 / self.options.level0_compaction_trigger as f64
            } else {
                self.current.level_bytes(level) as f64
                    / self.options.max_bytes_for_level(level) as f64
            };
            if score >= 1.0 && best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((level, score));
            }
        }
        best
    }

    /// Returns `true` if any level is over its compaction budget.
    pub fn needs_compaction(&self) -> bool {
        self.pick_compaction_level().is_some()
    }

    /// The file number of the live MANIFEST.
    pub fn manifest_number(&self) -> u64 {
        self.manifest_number
    }

    /// The database options (shared with compaction code).
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }
}

impl VersionMeta for Version {
    fn level0_len(&self) -> usize {
        self.files[0].len()
    }
    fn total_bytes(&self) -> u64 {
        Version::total_bytes(self)
    }
    fn num_files(&self) -> usize {
        Version::num_files(self)
    }
    fn file_sizes(&self) -> Vec<u64> {
        Version::file_sizes(self)
    }
    fn level_summary(&self) -> String {
        Version::level_summary(self)
    }
}

impl VersionSetOps for VersionSet {
    type Version = Version;

    fn recover(&mut self) -> Result<()> {
        VersionSet::recover(self)
    }
    fn create_new(&mut self) -> Result<()> {
        VersionSet::create_new(self)
    }
    fn log_number(&self) -> u64 {
        self.log_number
    }
    fn last_sequence(&self) -> SequenceNumber {
        self.last_sequence
    }
    fn set_last_sequence(&mut self, seq: SequenceNumber) {
        self.last_sequence = seq;
    }
    fn new_file_number(&mut self) -> u64 {
        VersionSet::new_file_number(self)
    }
    fn mark_file_number_used(&mut self, number: u64) {
        VersionSet::mark_file_number_used(self, number)
    }
    fn manifest_number(&self) -> u64 {
        VersionSet::manifest_number(self)
    }
    fn current(&mut self) -> Arc<Version> {
        VersionSet::current(self)
    }
    fn current_unpinned(&self) -> &Arc<Version> {
        VersionSet::current_unpinned(self)
    }
    fn live_files_and_pins(&mut self) -> (Vec<u64>, bool) {
        VersionSet::live_files_and_pins(self)
    }
    fn needs_compaction(&self) -> bool {
        VersionSet::needs_compaction(self)
    }
    fn commit_level0(
        &mut self,
        meta: Option<&FileMetaData>,
        log_number: Option<u64>,
    ) -> Result<()> {
        let mut edit = VersionEdit {
            log_number,
            ..Default::default()
        };
        if let Some(meta) = meta {
            edit.add_file(0, meta);
        }
        self.log_and_apply(edit).map(|_| ())
    }
}

/// Applies a sequence of edits to a base version.
pub struct VersionBuilder {
    files: Vec<Vec<Arc<FileMetaData>>>,
}

impl VersionBuilder {
    /// Starts from an empty version.
    pub fn new(base: Version) -> Self {
        VersionBuilder { files: base.files }
    }

    /// Starts from an existing version (files are shared via `Arc`).
    pub fn from_version(base: &Version) -> Self {
        VersionBuilder {
            files: base.files.clone(),
        }
    }

    /// Applies one edit.
    pub fn apply(&mut self, edit: &VersionEdit) {
        for (level, number) in &edit.deleted_files {
            if *level < self.files.len() {
                self.files[*level].retain(|f| f.number != *number);
            }
        }
        for (level, file) in &edit.new_files {
            if *level < self.files.len() {
                let meta = Arc::new(FileMetaData::new(
                    file.number,
                    file.file_size,
                    InternalKey::from_encoded(file.smallest.clone()),
                    InternalKey::from_encoded(file.largest.clone()),
                ));
                self.files[*level].push(meta);
            }
        }
    }

    /// Produces the resulting version with per-level ordering restored.
    pub fn finish(mut self) -> Version {
        for (level, files) in self.files.iter_mut().enumerate() {
            if level == 0 {
                files.sort_by_key(|f| std::cmp::Reverse(f.number));
            } else {
                files.sort_by(|a, b| {
                    compare_internal_keys(a.smallest.encoded(), b.smallest.encoded())
                });
            }
        }
        Version { files: self.files }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::ValueType;
    use pebblesdb_env::MemEnv;

    fn ikey(user: &str, seq: u64) -> InternalKey {
        InternalKey::new(user.as_bytes(), seq, ValueType::Value)
    }

    fn meta(number: u64, smallest: &str, largest: &str) -> FileMetaDataEdit {
        FileMetaDataEdit {
            number,
            file_size: 1000,
            smallest: ikey(smallest, 5).encoded().to_vec(),
            largest: ikey(largest, 1).encoded().to_vec(),
        }
    }

    #[test]
    fn version_edit_roundtrip() {
        let mut edit = VersionEdit {
            log_number: Some(12),
            next_file_number: Some(55),
            last_sequence: Some(9000),
            ..Default::default()
        };
        edit.deleted_files.push((2, 40));
        edit.new_files.push((1, meta(41, "a", "m")));
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded.log_number, Some(12));
        assert_eq!(decoded.next_file_number, Some(55));
        assert_eq!(decoded.last_sequence, Some(9000));
        assert_eq!(decoded.deleted_files, vec![(2, 40)]);
        assert_eq!(decoded.new_files.len(), 1);
        assert_eq!(decoded.new_files[0].0, 1);
        assert_eq!(decoded.new_files[0].1.number, 41);
    }

    #[test]
    fn corrupt_edit_is_rejected() {
        assert!(VersionEdit::decode(&[99, 1, 2, 3]).is_err());
    }

    #[test]
    fn builder_applies_adds_and_deletes_in_order() {
        let mut builder = VersionBuilder::new(Version::new(7));
        let mut edit = VersionEdit::default();
        edit.new_files.push((1, meta(10, "k", "p")));
        edit.new_files.push((1, meta(11, "a", "e")));
        edit.new_files.push((0, meta(12, "c", "z")));
        builder.apply(&edit);
        let mut second = VersionEdit::default();
        second.deleted_files.push((1, 10));
        second.new_files.push((2, meta(13, "q", "t")));
        builder.apply(&second);
        let version = builder.finish();
        assert_eq!(version.files[0].len(), 1);
        assert_eq!(version.files[1].len(), 1);
        assert_eq!(version.files[1][0].number, 11);
        assert_eq!(version.files[2].len(), 1);
        assert_eq!(version.num_files(), 3);
        assert_eq!(version.total_bytes(), 3000);
        assert_eq!(
            version.level_summary(),
            "L0:1 L1:1 L2:1 L3:0 L4:0 L5:0 L6:0"
        );
    }

    #[test]
    fn overlapping_inputs_expands_level0_ranges() {
        let mut builder = VersionBuilder::new(Version::new(7));
        let mut edit = VersionEdit::default();
        // Two overlapping level-0 files and one detached one.
        edit.new_files.push((0, meta(1, "a", "f")));
        edit.new_files.push((0, meta(2, "e", "k")));
        edit.new_files.push((0, meta(3, "x", "z")));
        builder.apply(&edit);
        let version = builder.finish();
        let inputs = version.overlapping_inputs(0, Some(b"a"), Some(b"b"));
        // Picking "a".."b" pulls in file 1; expansion to file 1's range pulls
        // in file 2 because they overlap at "e"/"f".
        let numbers: Vec<u64> = inputs.iter().map(|f| f.number).collect();
        assert!(numbers.contains(&1) && numbers.contains(&2));
        assert!(!numbers.contains(&3));
    }

    #[test]
    fn version_set_persists_and_recovers_state() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/db");
        env.create_dir_all(&db).unwrap();
        let opts = StoreOptions::default();

        let mut vs = VersionSet::new(Arc::clone(&env), db.clone(), opts.clone());
        vs.create_new().unwrap();
        vs.last_sequence = 777;
        let mut edit = VersionEdit::default();
        edit.new_files.push((1, meta(9, "a", "z")));
        vs.log_and_apply(edit).unwrap();

        let mut recovered = VersionSet::new(Arc::clone(&env), db, opts);
        recovered.recover().unwrap();
        assert_eq!(recovered.last_sequence, 777);
        assert_eq!(recovered.current_unpinned().files[1].len(), 1);
        assert_eq!(recovered.current_unpinned().files[1][0].number, 9);
        assert!(recovered.next_file_number > 9 || recovered.next_file_number > 2);
    }

    #[test]
    fn compaction_scores_trigger_on_level0_count_and_level_bytes() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/db2");
        env.create_dir_all(&db).unwrap();
        let mut opts = StoreOptions::default();
        opts.level0_compaction_trigger = 2;
        opts.base_level_bytes = 1500;
        let mut vs = VersionSet::new(env, db, opts);
        vs.create_new().unwrap();
        assert!(!vs.needs_compaction());

        let mut edit = VersionEdit::default();
        edit.new_files.push((0, meta(10, "a", "b")));
        edit.new_files.push((0, meta(11, "c", "d")));
        vs.log_and_apply(edit).unwrap();
        let (level, score) = vs.pick_compaction_level().unwrap();
        assert_eq!(level, 0);
        assert!(score >= 1.0);

        // Push level 1 over its byte budget (2 files x 1000 bytes > 1500).
        let mut edit = VersionEdit::default();
        edit.deleted_files.push((0, 10));
        edit.deleted_files.push((0, 11));
        edit.new_files.push((1, meta(12, "a", "b")));
        edit.new_files.push((1, meta(13, "c", "d")));
        vs.log_and_apply(edit).unwrap();
        let (level, _) = vs.pick_compaction_level().unwrap();
        assert_eq!(level, 1);
    }

    #[test]
    fn live_file_numbers_include_pinned_versions() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/db3");
        env.create_dir_all(&db).unwrap();
        let mut vs = VersionSet::new(env, db, StoreOptions::default());
        vs.create_new().unwrap();

        let mut edit = VersionEdit::default();
        edit.new_files.push((1, meta(20, "a", "c")));
        vs.log_and_apply(edit).unwrap();
        let pinned = vs.current();

        // Replace file 20 with 21; 20 must stay live while `pinned` exists.
        let mut edit = VersionEdit::default();
        edit.deleted_files.push((1, 20));
        edit.new_files.push((1, meta(21, "a", "c")));
        vs.log_and_apply(edit).unwrap();

        let live = vs.all_live_file_numbers();
        assert!(live.contains(&20));
        assert!(live.contains(&21));
        drop(pinned);
        let live = vs.all_live_file_numbers();
        assert!(!live.contains(&20));
        assert!(live.contains(&21));
    }
}
