//! Baseline leveled-compaction LSM engine.
//!
//! This crate implements the classical log-structured merge tree the paper
//! describes in chapter 2 and uses as the comparison point for PebblesDB:
//! LevelDB, HyperLevelDB and RocksDB. The three baselines are modelled as
//! configuration presets ([`StorePreset`]) over one engine so that the only
//! difference between "LevelDB" and "RocksDB" runs is the parameters the
//! paper itself calls out (memtable size, level-0 thresholds, compaction
//! parallelism), and the difference between *all of them* and PebblesDB is
//! the data structure.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pebblesdb_common::{KvStore, StorePreset};
//! use pebblesdb_env::MemEnv;
//! use pebblesdb_lsm::LsmDb;
//!
//! let env = Arc::new(MemEnv::new());
//! let db = LsmDb::open_preset(env, std::path::Path::new("/db"), StorePreset::LevelDb).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! ```

pub mod db;
pub mod iter;
pub mod version;

pub use db::{LsmDb, LsmPolicy};
pub use iter::LevelConcatIterator;
pub use pebblesdb_common::{StoreOptions, StorePreset};
pub use version::{FileMetaData, Version, VersionEdit, VersionSet};

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::{KvStore, WriteBatch};
    use pebblesdb_env::{DiskEnv, Env, MemEnv};
    use std::path::Path;
    use std::sync::Arc;

    fn small_options() -> StoreOptions {
        let mut opts = StoreOptions::default();
        opts.write_buffer_size = 32 << 10;
        opts.max_file_size = 16 << 10;
        opts.base_level_bytes = 64 << 10;
        opts.level0_compaction_trigger = 2;
        opts.level0_slowdown_writes_trigger = 4;
        opts.level0_stop_writes_trigger = 8;
        opts
    }

    fn open_small(env: Arc<dyn Env>, path: &Path) -> LsmDb {
        LsmDb::open_with_options(env, path, small_options(), StorePreset::HyperLevelDb).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    fn value(i: u32, len: usize) -> Vec<u8> {
        let mut v = format!("value{i:08}-").into_bytes();
        v.resize(len, b'x');
        v
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get(b"c").unwrap(), None);

        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);

        db.put(b"b", b"22").unwrap();
        assert_eq!(db.get(b"b").unwrap(), Some(b"22".to_vec()));
    }

    #[test]
    fn batched_writes_are_atomic_and_ordered() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        let mut batch = WriteBatch::new();
        batch.put(b"x", b"1");
        batch.put(b"y", b"2");
        batch.delete(b"x");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"x").unwrap(), None);
        assert_eq!(db.get(b"y").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn many_writes_flow_through_compaction_and_stay_readable() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(Arc::clone(&env), Path::new("/db"));
        let n = 3000u32;
        for i in 0..n {
            db.put(&key(i), &value(i, 100)).unwrap();
        }
        db.flush().unwrap();

        // Data must have reached multiple levels.
        let per_level = db.files_per_level();
        assert!(per_level.iter().skip(1).any(|&c| c > 0), "{per_level:?}");

        for i in (0..n).step_by(37) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 100)), "key {i}");
        }
        let stats = db.stats();
        assert!(stats.compactions > 0);
        assert!(stats.bytes_written > stats.user_bytes_written);
        assert!(stats.write_amplification() > 1.0);
    }

    #[test]
    fn overwrites_return_newest_value_after_compaction() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for round in 0..3u32 {
            for i in 0..500u32 {
                db.put(&key(i), &value(i * 10 + round, 64)).unwrap();
            }
        }
        db.flush().unwrap();
        for i in (0..500).step_by(11) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i * 10 + 2, 64)));
        }
    }

    #[test]
    fn scans_merge_memtable_and_sstables() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for i in 0..1000u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        db.flush().unwrap();
        // Recent updates stay in the memtable.
        db.put(&key(500), b"fresh").unwrap();
        db.delete(&key(501)).unwrap();

        let results = db.scan(&key(499), &key(505), 100).unwrap();
        let keys: Vec<Vec<u8>> = results.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![key(499), key(500), key(502), key(503), key(504)]);
        let map: std::collections::HashMap<_, _> = results.into_iter().collect();
        assert_eq!(map[&key(500)], b"fresh".to_vec());

        // Unbounded scan with a limit.
        let results = db.scan(&key(0), &[], 10).unwrap();
        assert_eq!(results.len(), 10);
        assert_eq!(results[0].0, key(0));
    }

    #[test]
    fn data_survives_reopen_via_wal_and_manifest() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let path = Path::new("/db");
        {
            let db = open_small(Arc::clone(&env), path);
            for i in 0..2000u32 {
                db.put(&key(i), &value(i, 64)).unwrap();
            }
            // No flush: some data is only in the WAL/memtable.
        }
        let db = open_small(Arc::clone(&env), path);
        for i in (0..2000).step_by(97) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
        }
    }

    #[test]
    fn disk_env_end_to_end() {
        let dir = std::env::temp_dir().join(format!("pebbles-lsm-disk-{}", std::process::id()));
        let env_concrete = DiskEnv::new();
        let _ = env_concrete.remove_dir_all(&dir);
        let env: Arc<dyn Env> = Arc::new(env_concrete.clone());
        {
            let db = open_small(Arc::clone(&env), &dir);
            for i in 0..500u32 {
                db.put(&key(i), &value(i, 128)).unwrap();
            }
            db.flush().unwrap();
            for i in (0..500).step_by(13) {
                assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 128)));
            }
        }
        env_concrete.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Arc::new(open_small(env, Path::new("/db")));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let k = format!("t{t}-{i:06}");
                        db.put(k.as_bytes(), &[b'v'; 64]).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let k = format!("t0-{i:06}");
                        let _ = db.get(k.as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.get(b"t0-000499").unwrap(), Some(vec![b'v'; 64]));
        assert_eq!(db.get(b"t1-000499").unwrap(), Some(vec![b'v'; 64]));
    }

    #[test]
    fn presets_report_their_names() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db =
            LsmDb::open_preset(Arc::clone(&env), Path::new("/l"), StorePreset::LevelDb).unwrap();
        assert_eq!(db.engine_name(), "LevelDB");
        let db2 = LsmDb::open_preset(env, Path::new("/r"), StorePreset::RocksDb).unwrap();
        assert_eq!(db2.engine_name(), "RocksDB");
    }

    #[test]
    fn stats_track_user_bytes_and_live_files() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for i in 0..200u32 {
            db.put(&key(i), &value(i, 100)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert!(stats.user_bytes_written >= 200 * 100);
        assert!(stats.disk_bytes_live > 0);
        assert!(stats.num_files > 0);
        assert!(!db.live_file_sizes().is_empty());
        assert!(db.stats().memory_usage_bytes > 0);
    }
}
