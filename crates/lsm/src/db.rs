//! The baseline leveled-compaction key-value store, as a [`ShapePolicy`].
//!
//! This engine follows the classic LevelDB design the paper describes in
//! chapter 2: writes go to a WAL and a memtable, memtables flush to level-0
//! sstables, and compaction merges a level's files with *every overlapping
//! file in the next level* and rewrites them. That rewrite is precisely the
//! write-amplification source FLSM removes, so this engine doubles as the
//! LevelDB/HyperLevelDB/RocksDB comparison point in the benchmark harness.
//!
//! Structurally, the LSM is the *degenerate* FLSM: every level has exactly
//! one implicit guard (section 3 of the paper). The shared engine chassis
//! ([`pebblesdb_engine`]) therefore owns the whole write path, recovery,
//! flush thread, worker pool and GC; this file contains only the
//! leveled-compaction policy — how jobs are picked, merged and committed,
//! and how reads route through the sorted runs.

use std::path::Path;
use std::sync::Arc;

use pebblesdb_common::iterator::{DbIterator, MergingIterator};
use pebblesdb_common::key::{
    compare_internal_keys, parse_internal_key, InternalKey, LookupKey, SequenceNumber, ValueType,
    MAX_SEQUENCE_NUMBER,
};
use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::vlog::LookupValue;
use pebblesdb_common::{
    CfStats, ColumnFamilyHandle, Db, Error, KvStore, ReadOptions, Result, StoreOptions,
    StorePreset, StoreStats, WriteBatch, WriteOptions,
};
use pebblesdb_engine::{EngineDb, EngineIo, FileMetaData, JobClaim, PolicyCtx, ShapePolicy};
use pebblesdb_env::Env;
use pebblesdb_sstable::TableBuilder;

use crate::version::{FileMetaDataEdit, Version, VersionEdit, VersionSet};

/// The leveled-compaction shape: one implicit guard per level.
pub struct LsmPolicy {
    options: StoreOptions,
    preset: StorePreset,
}

/// Mutable policy state: the per-level compaction pointer that rotates
/// through a level's key space across compactions.
pub struct LsmPolicyState {
    /// `compact_pointer[level]` is the largest internal key compacted so far.
    pub compact_pointer: Vec<Vec<u8>>,
}

/// Work selected for a background compaction pass.
pub struct LsmCompactionJob {
    level: usize,
    inputs: Vec<Arc<FileMetaData>>,
    next_level_inputs: Vec<Arc<FileMetaData>>,
    drop_tombstones: bool,
    output_numbers: Vec<u64>,
    /// Versions superseded at or below this sequence are invisible to every
    /// live snapshot and may be garbage-collected by the merge.
    smallest_snapshot: SequenceNumber,
}

impl LsmCompactionJob {
    /// A single input with nothing to merge below just moves down a level.
    fn is_trivial_move(&self) -> bool {
        self.level > 0 && self.inputs.len() == 1 && self.next_level_inputs.is_empty()
    }
}

impl ShapePolicy for LsmPolicy {
    type Versions = VersionSet;
    type State = LsmPolicyState;
    type Job = LsmCompactionJob;

    fn engine_name(&self) -> String {
        self.preset.name().to_string()
    }

    fn new_versions(&self, io: &EngineIo) -> VersionSet {
        VersionSet::new(Arc::clone(&io.env), io.db_path.clone(), io.options.clone())
    }

    fn new_state(&self) -> LsmPolicyState {
        LsmPolicyState {
            compact_pointer: vec![Vec::new(); self.options.max_levels],
        }
    }

    // ------------------------------------------------------------- read path

    fn get_in_version(
        &self,
        io: &EngineIo,
        version: &Version,
        opts: &ReadOptions,
        key: &LookupKey,
    ) -> Result<Option<LookupValue>> {
        version.get(opts, key, &io.table_cache)
    }

    fn append_version_iterators(
        &self,
        io: &EngineIo,
        version: &Version,
        opts: &ReadOptions,
        children: &mut Vec<Box<dyn DbIterator>>,
    ) -> Result<()> {
        for file in &version.files[0] {
            children.push(Box::new(io.table_cache.iter(
                opts,
                file.number,
                file.file_size,
            )?));
        }
        // Deeper levels hold disjoint files: one lazy concatenating iterator
        // per level opens only the files the cursor actually reaches.
        for level in 1..version.num_levels() {
            if version.files[level].is_empty() {
                continue;
            }
            children.push(Box::new(crate::iter::LevelConcatIterator::new(
                Arc::clone(&io.table_cache),
                opts.clone(),
                version.files[level].clone(),
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------ compaction

    /// Classic leveled compaction rewrites every overlapping next-level
    /// range, so jobs cannot be carved into disjoint units the way guards
    /// allow: a job is claimable only when no other job is in flight, which
    /// keeps the engine correct under any chassis worker-pool size.
    fn pick_job(
        &self,
        _io: &EngineIo,
        ctx: &mut PolicyCtx<'_, Self>,
    ) -> Option<JobClaim<LsmCompactionJob>> {
        if !ctx.claimed_inputs.is_empty() {
            return None;
        }
        let (level, _score) = ctx.versions.pick_compaction_level()?;
        let version = ctx.versions.current();

        let inputs: Vec<Arc<FileMetaData>> = if level == 0 {
            // Compact the whole of level 0 in one go (HyperLevelDB-style
            // batched level-0 compaction).
            version.files[0].clone()
        } else {
            // Rotate through the level using the compaction pointer.
            let files = &version.files[level];
            let pointer = &ctx.state.compact_pointer[level];
            let chosen = files
                .iter()
                .find(|f| {
                    pointer.is_empty()
                        || compare_internal_keys(f.largest.encoded(), pointer)
                            == std::cmp::Ordering::Greater
                })
                .or_else(|| files.first())?;
            vec![Arc::clone(chosen)]
        };
        if inputs.is_empty() {
            return None;
        }

        let smallest_user = inputs
            .iter()
            .map(|f| f.smallest.user_key().to_vec())
            .min()
            .unwrap_or_default();
        let largest_user = inputs
            .iter()
            .map(|f| f.largest.user_key().to_vec())
            .max()
            .unwrap_or_default();
        let next_level_inputs =
            version.overlapping_inputs(level + 1, Some(&smallest_user), Some(&largest_user));

        // Tombstones can be dropped when no deeper level holds the key range.
        let mut drop_tombstones = true;
        for deeper in (level + 2)..version.num_levels() {
            if !version
                .overlapping_inputs(deeper, Some(&smallest_user), Some(&largest_user))
                .is_empty()
            {
                drop_tombstones = false;
                break;
            }
        }

        let total_input_bytes: u64 = inputs
            .iter()
            .chain(next_level_inputs.iter())
            .map(|f| f.file_size)
            .sum();
        let estimated_outputs =
            (total_input_bytes / self.options.max_file_size.max(1) as u64 + 2) as usize;
        let output_numbers: Vec<u64> = (0..estimated_outputs)
            .map(|_| ctx.versions.new_file_number())
            .collect();

        let input_numbers = inputs
            .iter()
            .chain(next_level_inputs.iter())
            .map(|f| f.number)
            .collect();
        Some(JobClaim {
            input_numbers,
            output_numbers: output_numbers.clone(),
            job: LsmCompactionJob {
                level,
                inputs,
                next_level_inputs,
                drop_tombstones,
                output_numbers,
                smallest_snapshot: ctx.smallest_snapshot,
            },
        })
    }

    fn run_job_io(&self, io: &EngineIo, job: &LsmCompactionJob) -> Result<Vec<FileMetaData>> {
        if job.is_trivial_move() {
            return Ok(Vec::new());
        }
        self.compaction_io(io, job)
    }

    fn commit_job(
        &self,
        ctx: &mut PolicyCtx<'_, Self>,
        job: &LsmCompactionJob,
        outputs: Vec<FileMetaData>,
    ) -> Result<(u64, u64)> {
        if job.is_trivial_move() {
            let file = &job.inputs[0];
            let mut edit = VersionEdit::default();
            edit.delete_file(job.level, file.number);
            edit.new_files.push((
                job.level + 1,
                FileMetaDataEdit {
                    number: file.number,
                    file_size: file.file_size,
                    smallest: file.smallest.encoded().to_vec(),
                    largest: file.largest.encoded().to_vec(),
                },
            ));
            ctx.state.compact_pointer[job.level] = file.largest.encoded().to_vec();
            ctx.versions.log_and_apply(edit)?;
            return Ok((0, 0));
        }

        let bytes_read: u64 = job
            .inputs
            .iter()
            .chain(job.next_level_inputs.iter())
            .map(|f| f.file_size)
            .sum();
        let mut edit = VersionEdit::default();
        for file in &job.inputs {
            edit.delete_file(job.level, file.number);
        }
        for file in &job.next_level_inputs {
            edit.delete_file(job.level + 1, file.number);
        }
        let mut bytes_written = 0;
        for meta in &outputs {
            bytes_written += meta.file_size;
            edit.add_file(job.level + 1, meta);
        }
        if let Some(last_input) = job.inputs.last() {
            ctx.state.compact_pointer[job.level] = last_input.largest.encoded().to_vec();
        }
        ctx.versions.log_and_apply(edit)?;
        Ok((bytes_read, bytes_written))
    }
}

impl LsmPolicy {
    /// Builds the leveled shape from `options` (labelled with the
    /// HyperLevelDB preset). Public so chassis-generic plumbing (sharding,
    /// the replication follower) can open an LSM-shaped `EngineDb` directly.
    pub fn new(options: &StoreOptions) -> LsmPolicy {
        LsmPolicy {
            options: options.clone(),
            preset: StorePreset::HyperLevelDb,
        }
    }

    /// The IO part of a compaction: merge the inputs and write output tables.
    fn compaction_io(&self, io: &EngineIo, job: &LsmCompactionJob) -> Result<Vec<FileMetaData>> {
        let read_options = ReadOptions::default();
        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        for file in job.inputs.iter().chain(job.next_level_inputs.iter()) {
            children.push(Box::new(io.table_cache.iter(
                &read_options,
                file.number,
                file.file_size,
            )?));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first();

        let mut outputs: Vec<FileMetaData> = Vec::new();
        let mut builder: Option<(u64, TableBuilder)> = None;
        let mut output_index = 0usize;
        let mut last_user_key: Option<Vec<u8>> = None;
        let mut last_sequence_for_key = MAX_SEQUENCE_NUMBER;

        while merged.valid() {
            let key = merged.key().to_vec();
            let parsed = parse_internal_key(&key)
                .ok_or_else(|| Error::corruption("malformed key during compaction"))?;

            let is_same_user_key = last_user_key
                .as_deref()
                .map(|last| last == parsed.user_key)
                .unwrap_or(false);
            if !is_same_user_key {
                last_user_key = Some(parsed.user_key.to_vec());
                last_sequence_for_key = MAX_SEQUENCE_NUMBER;
            }

            // A version may be dropped once a newer version of the same key
            // is visible to every live snapshot; tombstones additionally
            // need no deeper level still holding the key.
            let drop_entry = last_sequence_for_key <= job.smallest_snapshot
                || (job.drop_tombstones
                    && parsed.value_type == ValueType::Deletion
                    && parsed.sequence <= job.smallest_snapshot);
            last_sequence_for_key = parsed.sequence;
            if !drop_entry {
                if builder.is_none() {
                    let number = *job
                        .output_numbers
                        .get(output_index)
                        .ok_or_else(|| Error::internal("ran out of output file numbers"))?;
                    output_index += 1;
                    let path = pebblesdb_common::filename::table_file_name(&io.db_path, number);
                    let file = io.env.new_writable_file(&path)?;
                    // Outputs of a level-N compaction land in level N+1, so
                    // the deeper level's compression tier applies.
                    builder = Some((
                        number,
                        TableBuilder::new_for_level(&self.options, file, job.level + 1),
                    ));
                }
                let (_, b) = builder.as_mut().expect("builder exists");
                b.add(&key, merged.value())?;
                if b.file_size() >= self.options.max_file_size as u64 {
                    let (number, b) = builder.take().expect("builder exists");
                    outputs.push(finish_output(number, b)?);
                }
            }
            merged.next();
        }
        if let Some((number, b)) = builder.take() {
            if b.num_entries() > 0 {
                outputs.push(finish_output(number, b)?);
            } else {
                b.abandon()?;
            }
        }
        Ok(outputs)
    }
}

fn finish_output(number: u64, builder: TableBuilder) -> Result<FileMetaData> {
    let smallest = builder.first_key().map(|k| k.to_vec()).unwrap_or_default();
    let largest = builder.last_key().map(|k| k.to_vec()).unwrap_or_default();
    let size = builder.finish()?;
    Ok(FileMetaData::new(
        number,
        size,
        InternalKey::from_encoded(smallest),
        InternalKey::from_encoded(largest),
    ))
}

/// A handle to an open baseline LSM database.
///
/// Cloneable via `Arc`; all methods take `&self` and are safe to call from
/// multiple threads. Everything but the leveled-compaction policy runs in
/// the shared chassis ([`EngineDb`]).
pub struct LsmDb {
    db: EngineDb<LsmPolicy>,
}

impl LsmDb {
    /// Opens (creating if necessary) a database at `path` with explicit
    /// options, labelled with `preset` for benchmark output.
    pub fn open_with_options(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
        preset: StorePreset,
    ) -> Result<LsmDb> {
        let policy = LsmPolicy {
            options: options.clone(),
            preset,
        };
        Ok(LsmDb {
            db: EngineDb::open(policy, env, path, options)?,
        })
    }

    /// Opens a database configured like one of the paper's baseline stores.
    pub fn open_preset(env: Arc<dyn Env>, path: &Path, preset: StorePreset) -> Result<LsmDb> {
        LsmDb::open_with_options(env, path, StoreOptions::with_preset(preset), preset)
    }

    /// Opens a database with default (HyperLevelDB-like) options.
    pub fn open(env: Arc<dyn Env>, path: &Path) -> Result<LsmDb> {
        LsmDb::open_preset(env, path, StorePreset::HyperLevelDb)
    }

    /// Opens (creating if necessary) a sharded store of baseline-LSM engines
    /// at `path`, labelled with `preset`; see [`pebblesdb_shard`] for the
    /// routing and commit protocol.
    pub fn open_sharded(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
        preset: StorePreset,
        config: pebblesdb_shard::ShardConfig,
    ) -> Result<pebblesdb_shard::ShardedDb<LsmPolicy>> {
        pebblesdb_shard::ShardedDb::open_with(
            |o| LsmPolicy {
                options: o.clone(),
                preset,
            },
            env,
            path,
            options,
            config,
        )
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        self.db.options()
    }

    /// A human-readable per-level file-count summary.
    pub fn level_summary(&self) -> String {
        self.db.with_current_version(|v| v.level_summary())
    }

    /// Number of files at each level (useful for tests and examples).
    pub fn files_per_level(&self) -> Vec<usize> {
        self.db
            .with_current_version(|v| v.files.iter().map(|f| f.len()).collect())
    }

    /// Triggers a memtable flush plus any needed compactions, then waits for
    /// the background threads to go idle.
    pub fn compact_all(&self) -> Result<()> {
        KvStore::flush(self)
    }

    /// Runs one value-log garbage-collection pass: relocates live values out
    /// of the coldest sealed vlog file of each family and deletes retired
    /// files no pinned snapshot can still reach.
    pub fn vlog_gc(&self) -> Result<pebblesdb_engine::VlogGcReport> {
        self.db.vlog_gc()
    }

    /// The underlying chassis store. Replication plumbing (the follower
    /// store, change-stream shipping) is generic over the tree shape and
    /// works against the chassis directly.
    pub fn engine(&self) -> &EngineDb<LsmPolicy> {
        &self.db
    }
}

/// Column families on the baseline LSM: the exact same chassis feature, one
/// leveled structure per family.
impl Db for LsmDb {
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle> {
        self.db.create_cf(name)
    }
    fn drop_cf(&self, name: &str) -> Result<()> {
        self.db.drop_cf(name)
    }
    fn list_cfs(&self) -> Vec<String> {
        self.db.list_cfs()
    }
    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        self.db.cf(name)
    }
    fn cf_stats(&self) -> Vec<CfStats> {
        self.db.cf_stats()
    }
    fn stream(&self, from_seq: SequenceNumber) -> Result<Box<dyn pebblesdb_common::ChangeStream>> {
        Db::stream(&self.db, from_seq)
    }
    fn committed_sequence(&self) -> SequenceNumber {
        Db::committed_sequence(&self.db)
    }
}

impl KvStore for LsmDb {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put_opts(opts, key, value)
    }
    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get_opts(opts, key)
    }
    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.db.delete_opts(opts, key)
    }
    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.db.write_opts(opts, batch)
    }
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.db.iter(opts)
    }
    fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }
    fn flush(&self) -> Result<()> {
        self.db.flush()
    }
    fn stats(&self) -> StoreStats {
        self.db.stats()
    }
    fn engine_name(&self) -> String {
        self.db.engine_name()
    }
    fn live_file_sizes(&self) -> Vec<u64> {
        self.db.live_file_sizes()
    }
}
