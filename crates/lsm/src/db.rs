//! The baseline leveled-compaction key-value store.
//!
//! This engine follows the classic LevelDB design the paper describes in
//! chapter 2: writes go to a WAL and a memtable, memtables flush to level-0
//! sstables, and a background thread compacts a level by merging its files
//! with *every overlapping file in the next level* and rewriting them. That
//! rewrite is precisely the write-amplification source FLSM removes, so this
//! engine doubles as the LevelDB/HyperLevelDB/RocksDB comparison point in
//! the benchmark harness.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use pebblesdb_common::commit::{CommitGroup, CommitQueue, Role};
use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::{log_file_name, parse_file_name, table_file_name, FileType};
use pebblesdb_common::iterator::{DbIterator, MergingIterator, PinnedIterator};
use pebblesdb_common::key::{
    compare_internal_keys, parse_internal_key, InternalKey, LookupKey, SequenceNumber, ValueType,
    MAX_SEQUENCE_NUMBER,
};
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::user_iter::UserIterator;
use pebblesdb_common::{
    Error, KvStore, ReadOptions, Result, StoreOptions, StorePreset, StoreStats, WriteBatch,
    WriteOptions,
};
use pebblesdb_env::Env;
use pebblesdb_skiplist::memtable::MemTableGet;
use pebblesdb_skiplist::MemTable;
use pebblesdb_sstable::{TableBuilder, TableCache};
use pebblesdb_wal::{LogReader, LogWriter};

use crate::version::{FileMetaData, Version, VersionEdit, VersionSet};

/// A handle to an open baseline LSM database.
///
/// Cloneable via `Arc`; all methods take `&self` and are safe to call from
/// multiple threads.
pub struct LsmDb {
    inner: Arc<DbInner>,
    background_threads: Mutex<Vec<JoinHandle<()>>>,
}

struct DbInner {
    options: StoreOptions,
    preset: StorePreset,
    env: Arc<dyn Env>,
    db_path: PathBuf,
    table_cache: Arc<TableCache>,
    state: Mutex<DbState>,
    /// Group-commit writer queue: concurrent writers enqueue batches, one
    /// leader merges the group and performs WAL IO outside `state`.
    commit_queue: CommitQueue,
    work_available: Condvar,
    /// Wakes the dedicated flush thread (imm -> level 0 never queues behind
    /// a level compaction, mirroring the FLSM engine so comparisons of the
    /// two write paths stay fair).
    flush_available: Condvar,
    work_done: Condvar,
    shutting_down: AtomicBool,
    counters: EngineCounters,
    snapshots: Arc<SnapshotList>,
}

struct DbState {
    /// The active memtable. Concurrent: the group-commit leader inserts via
    /// `&self` while `get` and streaming cursors read it lock-free, so the
    /// table is never cloned — when full it is frozen whole into `imm`.
    mem: Arc<MemTable>,
    imm: Option<Arc<MemTable>>,
    versions: VersionSet,
    log: Option<LogWriter>,
    log_file_number: u64,
    compact_pointer: Vec<Vec<u8>>,
    compaction_running: bool,
    /// Whether the flush thread is writing `imm` to level 0 right now.
    flush_running: bool,
    /// Set when the last GC pass ran while a read or cursor still pinned an
    /// old version (whose files it therefore kept); `flush` on a quiesced
    /// store rescans only in that case instead of on every call.
    gc_rescan_needed: bool,
    /// Output file numbers of the in-flight flush or compaction; the GC
    /// must not delete them before their version edit commits.
    pending_outputs: BTreeSet<u64>,
    bg_error: Option<Error>,
}

/// Work selected for a background compaction pass.
struct CompactionJob {
    level: usize,
    inputs: Vec<Arc<FileMetaData>>,
    next_level_inputs: Vec<Arc<FileMetaData>>,
    drop_tombstones: bool,
    output_numbers: Vec<u64>,
    /// Versions superseded at or below this sequence are invisible to every
    /// live snapshot and may be garbage-collected by the merge.
    smallest_snapshot: SequenceNumber,
}

impl LsmDb {
    /// Opens (creating if necessary) a database at `path` with explicit
    /// options, labelled with `preset` for benchmark output.
    pub fn open_with_options(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
        preset: StorePreset,
    ) -> Result<LsmDb> {
        env.create_dir_all(path)?;
        let table_cache = Arc::new(TableCache::new(
            Arc::clone(&env),
            path.to_path_buf(),
            options.clone(),
            options.max_open_files,
        ));
        let mut versions = VersionSet::new(Arc::clone(&env), path.to_path_buf(), options.clone());

        let current_exists = env.file_exists(&pebblesdb_common::filename::current_file_name(path));
        if current_exists {
            versions.recover()?;
        } else {
            if !options.create_if_missing {
                return Err(Error::invalid_argument("database does not exist"));
            }
            versions.create_new()?;
        }
        if current_exists && options.error_if_exists {
            return Err(Error::invalid_argument("database already exists"));
        }

        let mut state = DbState {
            mem: Arc::new(MemTable::new()),
            imm: None,
            versions,
            log: None,
            log_file_number: 0,
            compact_pointer: vec![Vec::new(); options.max_levels],
            compaction_running: false,
            flush_running: false,
            gc_rescan_needed: false,
            pending_outputs: BTreeSet::new(),
            bg_error: None,
        };

        let inner_scaffold = DbInnerScaffold {
            env: Arc::clone(&env),
            db_path: path.to_path_buf(),
            options: options.clone(),
        };
        inner_scaffold.recover_wals(&mut state)?;

        // Start a fresh WAL for new writes.
        let log_number = state.versions.new_file_number();
        let log_file = env.new_writable_file(&log_file_name(path, log_number))?;
        state.log = Some(LogWriter::new(log_file));
        state.log_file_number = log_number;
        let edit = VersionEdit {
            log_number: Some(log_number),
            ..Default::default()
        };
        state.versions.log_and_apply(edit)?;

        let inner = Arc::new(DbInner {
            options,
            preset,
            env,
            db_path: path.to_path_buf(),
            table_cache,
            state: Mutex::new(state),
            commit_queue: CommitQueue::new(),
            work_available: Condvar::new(),
            flush_available: Condvar::new(),
            work_done: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            counters: EngineCounters::new(),
            snapshots: SnapshotList::new(),
        });

        {
            let mut state = inner.state.lock();
            inner.remove_obsolete_files(&mut state);
        }

        // Flush/compaction split: a dedicated flush thread keeps imm -> L0
        // latency independent of compaction length, exactly as in the FLSM
        // engine. Level compactions themselves stay single-threaded here —
        // classic leveled compaction rewrites overlapping next-level ranges,
        // so disjoint jobs cannot be carved out the way guards allow.
        let mut handles = Vec::new();
        let flush_inner = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name("lsm-flush".to_string())
                .spawn(move || DbInner::flush_main(flush_inner))
                .map_err(|e| Error::internal(format!("spawn flush thread: {e}")))?,
        );
        let bg_inner = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name("lsm-compaction".to_string())
                .spawn(move || DbInner::compaction_main(bg_inner))
                .map_err(|e| Error::internal(format!("spawn compaction thread: {e}")))?,
        );

        Ok(LsmDb {
            inner,
            background_threads: Mutex::new(handles),
        })
    }

    /// Opens a database configured like one of the paper's baseline stores.
    pub fn open_preset(env: Arc<dyn Env>, path: &Path, preset: StorePreset) -> Result<LsmDb> {
        LsmDb::open_with_options(env, path, StoreOptions::with_preset(preset), preset)
    }

    /// Opens a database with default (HyperLevelDB-like) options.
    pub fn open(env: Arc<dyn Env>, path: &Path) -> Result<LsmDb> {
        LsmDb::open_preset(env, path, StorePreset::HyperLevelDb)
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.inner.options
    }

    /// A human-readable per-level file-count summary.
    pub fn level_summary(&self) -> String {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().level_summary()
    }

    /// Number of files at each level (useful for tests and examples).
    pub fn files_per_level(&self) -> Vec<usize> {
        let state = self.inner.state.lock();
        state
            .versions
            .current_unpinned()
            .files
            .iter()
            .map(|f| f.len())
            .collect()
    }

    /// Triggers a memtable flush plus any needed compactions, then waits for
    /// the background thread to go idle.
    pub fn compact_all(&self) -> Result<()> {
        self.flush()
    }
}

impl Drop for LsmDb {
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.work_available.notify_all();
        self.inner.flush_available.notify_all();
        for handle in self.background_threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Helper owning what WAL recovery needs before `DbInner` exists.
struct DbInnerScaffold {
    env: Arc<dyn Env>,
    db_path: PathBuf,
    options: StoreOptions,
}

impl DbInnerScaffold {
    /// Replays write-ahead logs newer than the manifest's log number.
    fn recover_wals(&self, state: &mut DbState) -> Result<()> {
        let min_log = state.versions.log_number;
        let mut log_numbers: Vec<u64> = self
            .env
            .children(&self.db_path)?
            .iter()
            .filter_map(|name| parse_file_name(name))
            .filter(|(ty, number)| *ty == FileType::WriteAheadLog && *number >= min_log)
            .map(|(_, number)| number)
            .collect();
        log_numbers.sort_unstable();

        for number in log_numbers {
            state.versions.mark_file_number_used(number);
            let path = log_file_name(&self.db_path, number);
            let file = self.env.new_sequential_file(&path)?;
            let mut reader = LogReader::new(file);
            // A clean end or a torn tail both end replay of this log.
            while let Ok(Some(record)) = reader.read_record() {
                let batch = match WriteBatch::from_contents(record) {
                    Ok(batch) => batch,
                    Err(_) => break,
                };
                let base_seq = batch.sequence();
                let mut applied = 0u64;
                for item in batch.iter() {
                    let item = match item {
                        Ok(item) => item,
                        Err(_) => break,
                    };
                    state
                        .mem
                        .add(item.sequence, item.value_type, item.key, item.value);
                    applied += 1;
                }
                let last = base_seq + applied.saturating_sub(1);
                if last > state.versions.last_sequence {
                    state.versions.last_sequence = last;
                }
                if state.mem.approximate_memory_usage() > self.options.write_buffer_size {
                    self.flush_recovery_memtable(state)?;
                }
            }
        }
        if !state.mem.is_empty() {
            self.flush_recovery_memtable(state)?;
        }
        Ok(())
    }

    fn flush_recovery_memtable(&self, state: &mut DbState) -> Result<()> {
        let number = state.versions.new_file_number();
        let mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
        let meta = build_table_from_memtable(
            self.env.as_ref(),
            &self.db_path,
            &self.options,
            &mem,
            number,
        )?;
        if let Some(meta) = meta {
            let mut edit = VersionEdit::default();
            edit.add_file(0, &meta);
            state.versions.log_and_apply(edit)?;
        }
        Ok(())
    }
}

/// Writes the contents of a memtable into a new level-0 sstable.
fn build_table_from_memtable(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    mem: &MemTable,
    file_number: u64,
) -> Result<Option<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    if !iter.valid() {
        return Ok(None);
    }
    let path = table_file_name(db_path, file_number);
    let file = env.new_writable_file(&path)?;
    let mut builder = TableBuilder::new(options, file);
    let mut smallest: Option<Vec<u8>> = None;
    let mut largest: Vec<u8> = Vec::new();
    while iter.valid() {
        if smallest.is_none() {
            smallest = Some(iter.key().to_vec());
        }
        largest = iter.key().to_vec();
        builder.add(iter.key(), iter.value())?;
        iter.next();
    }
    let file_size = builder.finish()?;
    Ok(Some(FileMetaData::new(
        file_number,
        file_size,
        InternalKey::from_encoded(smallest.unwrap_or_default()),
        InternalKey::from_encoded(largest),
    )))
}

impl DbInner {
    // ---------------------------------------------------------------- write

    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut user_bytes = 0u64;
        for record in batch.iter() {
            let record = record?;
            user_bytes += (record.key.len() + record.value.len()) as u64;
        }

        let ticket = self.commit_queue.submit(Some(batch), opts.sync);
        let result = match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result,
            Role::Leader(group) => self.commit(group),
        };
        if result.is_ok() {
            self.counters.add_user_bytes(user_bytes);
        }
        result
    }

    /// Commits a write group as its leader: make room, reserve a sequence
    /// range, then append + sync the WAL and apply the merged batch to the
    /// concurrent memtable **outside** the state mutex, so readers and the
    /// compaction thread proceed during the IO. The new sequence is only
    /// published (making the group visible) after the apply succeeds.
    fn commit(&self, mut group: CommitGroup) -> Result<()> {
        let mut state = self.state.lock();
        let force = group.force_rotate && !state.mem.is_empty();
        let mut result = self.make_room_for_write(&mut state, force);

        if result.is_ok() && !group.batch.is_empty() {
            let seq = state.versions.last_sequence + 1;
            group.batch.set_sequence(seq);
            let count = u64::from(group.batch.count());

            // Only the leader (that's us, until `complete`) touches the log
            // or inserts into `mem`, so both can leave the mutex.
            let mut log = state.log.take();
            let mem = Arc::clone(&state.mem);
            let batch = &group.batch;
            let sync = group.sync;
            let io_result = MutexGuard::unlocked(&mut state, || -> Result<()> {
                if let Some(log) = log.as_mut() {
                    log.add_record(batch.contents())?;
                    if sync {
                        log.sync()?;
                    }
                }
                for record in batch.iter() {
                    let record = record?;
                    mem.add(record.sequence, record.value_type, record.key, record.value);
                }
                Ok(())
            });
            state.log = log;
            match io_result {
                Ok(()) => state.versions.last_sequence = seq + count - 1,
                Err(err) => {
                    // A failed WAL append/sync may have lost acknowledged
                    // bytes; poison the store like LevelDB does.
                    if state.bg_error.is_none() {
                        state.bg_error = Some(err.clone());
                    }
                    result = Err(err);
                }
            }
        }
        drop(state);
        self.commit_queue.complete(group, &result);
        result
    }

    /// Ensures there is room in the memtable, applying level-0 back-pressure.
    fn make_room_for_write(&self, state: &mut MutexGuard<'_, DbState>, force: bool) -> Result<()> {
        let mut allow_delay = !force;
        let mut force = force;
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let level0_files = state.versions.current_unpinned().files[0].len();
            if allow_delay && level0_files >= self.options.level0_slowdown_writes_trigger {
                // Gentle back-pressure: let the compaction thread make
                // progress without fully blocking this writer.
                allow_delay = false;
                let stall = Instant::now();
                self.work_available.notify_one();
                MutexGuard::unlocked(state, || std::thread::sleep(Duration::from_millis(1)));
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if !force && state.mem.approximate_memory_usage() <= self.options.write_buffer_size {
                return Ok(());
            }
            if state.imm.is_some() {
                // Previous memtable still flushing.
                let stall = Instant::now();
                self.flush_available.notify_one();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if level0_files >= self.options.level0_stop_writes_trigger {
                let stall = Instant::now();
                self.work_available.notify_one();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }

            // Switch to a fresh memtable and WAL. The full memtable is
            // frozen whole — cursors still pinning it keep reading it in
            // `imm` (and beyond, through their own `Arc`s) with no copy.
            let new_log_number = state.versions.new_file_number();
            let log_file = self
                .env
                .new_writable_file(&log_file_name(&self.db_path, new_log_number))?;
            let close_result = match state.log.take() {
                Some(old_log) => old_log.close(),
                None => Ok(()),
            };
            state.log = Some(LogWriter::new(log_file));
            state.log_file_number = new_log_number;
            if let Err(err) = close_result {
                // A failed close may have lost a sync on acknowledged
                // records in the old log; surface it instead of dropping it.
                if state.bg_error.is_none() {
                    state.bg_error = Some(err.clone());
                }
                return Err(err);
            }
            let full_mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
            state.imm = Some(full_mem);
            force = false;
            self.flush_available.notify_one();
        }
    }

    // ----------------------------------------------------------------- read

    fn get(&self, opts: &ReadOptions, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let (lookup, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence);
            let lookup = LookupKey::new(user_key, sequence);
            match state.mem.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
            (lookup, state.imm.clone(), state.versions.current())
        };
        if let Some(imm) = imm {
            match imm.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
        }
        version.get(opts, &lookup, &self.table_cache)
    }

    /// Builds the streaming user-key cursor: memtables plus every on-disk
    /// level, merged and filtered down to the view at the cursor's sequence.
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.counters.record_seek();
        let (sequence, mem, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence);
            (
                sequence,
                Arc::clone(&state.mem),
                state.imm.clone(),
                state.versions.current(),
            )
        };

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        children.push(Box::new(mem.owned_iter()));
        if let Some(imm) = imm {
            children.push(Box::new(imm.owned_iter()));
        }
        self.add_version_iterators(opts, &version, &mut children)?;

        let merged = MergingIterator::new(children);
        let user = UserIterator::new(Box::new(merged), sequence);
        // Pin the version so obsolete-file GC cannot delete the sstables the
        // cursor is still reading.
        Ok(Box::new(PinnedIterator::new(Box::new(user), version)))
    }

    fn add_version_iterators(
        &self,
        opts: &ReadOptions,
        version: &Version,
        children: &mut Vec<Box<dyn DbIterator>>,
    ) -> Result<()> {
        for file in &version.files[0] {
            children.push(Box::new(self.table_cache.iter(
                opts,
                file.number,
                file.file_size,
            )?));
        }
        // Deeper levels hold disjoint files: one lazy concatenating iterator
        // per level opens only the files the cursor actually reaches.
        for level in 1..version.num_levels() {
            if version.files[level].is_empty() {
                continue;
            }
            children.push(Box::new(crate::iter::LevelConcatIterator::new(
                Arc::clone(&self.table_cache),
                opts.clone(),
                version.files[level].clone(),
            )));
        }
        Ok(())
    }

    // ----------------------------------------------------- background work

    /// The dedicated flush thread: turns `imm` into a level-0 sstable the
    /// moment one exists, without queueing behind a level compaction.
    fn flush_main(inner: Arc<DbInner>) {
        let mut state = inner.state.lock();
        loop {
            while !inner.shutting_down.load(Ordering::SeqCst)
                && (state.imm.is_none() || state.bg_error.is_some())
            {
                inner.flush_available.wait(&mut state);
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            state.flush_running = true;
            let result = inner.compact_memtable(&mut state);
            state.flush_running = false;
            if let Err(err) = result {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
            inner.work_done.notify_all();
            inner.work_available.notify_all();
        }
    }

    /// The level-compaction thread.
    fn compaction_main(inner: Arc<DbInner>) {
        let mut state = inner.state.lock();
        loop {
            while !inner.shutting_down.load(Ordering::SeqCst)
                && (!state.versions.needs_compaction() || state.bg_error.is_some())
            {
                inner.work_available.wait(&mut state);
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            state.compaction_running = true;
            let result = match inner.pick_compaction(&mut state) {
                Some(job) => {
                    inner.counters.record_compaction_start();
                    let result = inner.run_compaction(&mut state, job);
                    inner.counters.record_compaction_end();
                    result
                }
                None => Ok(()),
            };
            state.compaction_running = false;
            if let Err(err) = result {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
            inner.work_done.notify_all();
        }
    }

    fn compact_memtable(&self, state: &mut MutexGuard<'_, DbState>) -> Result<()> {
        let imm = match state.imm.clone() {
            Some(imm) => imm,
            None => return Ok(()),
        };
        let number = state.versions.new_file_number();
        // The new table is invisible to every version until the edit
        // commits; keep the compaction thread's GC away from it meanwhile.
        state.pending_outputs.insert(number);
        let start = Instant::now();
        let env = Arc::clone(&self.env);
        let db_path = self.db_path.clone();
        let options = self.options.clone();
        let meta = MutexGuard::unlocked(state, || {
            build_table_from_memtable(env.as_ref(), &db_path, &options, &imm, number)
        });
        let meta = match meta {
            Ok(meta) => meta,
            Err(err) => {
                state.pending_outputs.remove(&number);
                return Err(err);
            }
        };

        let mut edit = VersionEdit {
            log_number: Some(state.log_file_number),
            ..Default::default()
        };
        let mut written = 0;
        if let Some(meta) = &meta {
            written = meta.file_size;
            edit.add_file(0, meta);
        }
        let commit = state.versions.log_and_apply(edit);
        state.pending_outputs.remove(&number);
        commit?;
        state.imm = None;
        self.counters.record_flush();
        self.counters
            .record_compaction(start.elapsed().as_micros() as u64, 0, written);
        self.remove_obsolete_files(state);
        Ok(())
    }

    fn pick_compaction(&self, state: &mut MutexGuard<'_, DbState>) -> Option<CompactionJob> {
        let (level, _score) = state.versions.pick_compaction_level()?;
        let version = state.versions.current();

        let inputs: Vec<Arc<FileMetaData>> = if level == 0 {
            // Compact the whole of level 0 in one go (HyperLevelDB-style
            // batched level-0 compaction).
            version.files[0].clone()
        } else {
            // Rotate through the level using the compaction pointer.
            let files = &version.files[level];
            let pointer = &state.compact_pointer[level];
            let chosen = files
                .iter()
                .find(|f| {
                    pointer.is_empty()
                        || compare_internal_keys(f.largest.encoded(), pointer)
                            == std::cmp::Ordering::Greater
                })
                .or_else(|| files.first())?;
            vec![Arc::clone(chosen)]
        };
        if inputs.is_empty() {
            return None;
        }

        let smallest_user = inputs
            .iter()
            .map(|f| f.smallest.user_key().to_vec())
            .min()
            .unwrap_or_default();
        let largest_user = inputs
            .iter()
            .map(|f| f.largest.user_key().to_vec())
            .max()
            .unwrap_or_default();
        let next_level_inputs =
            version.overlapping_inputs(level + 1, Some(&smallest_user), Some(&largest_user));

        // Tombstones can be dropped when no deeper level holds the key range.
        let mut drop_tombstones = true;
        for deeper in (level + 2)..version.num_levels() {
            if !version
                .overlapping_inputs(deeper, Some(&smallest_user), Some(&largest_user))
                .is_empty()
            {
                drop_tombstones = false;
                break;
            }
        }

        let total_input_bytes: u64 = inputs
            .iter()
            .chain(next_level_inputs.iter())
            .map(|f| f.file_size)
            .sum();
        let estimated_outputs =
            (total_input_bytes / self.options.max_file_size.max(1) as u64 + 2) as usize;
        let output_numbers: Vec<u64> = (0..estimated_outputs)
            .map(|_| state.versions.new_file_number())
            .collect();
        // Protect the not-yet-committed outputs from the flush thread's GC.
        state.pending_outputs.extend(output_numbers.iter().copied());

        Some(CompactionJob {
            level,
            inputs,
            next_level_inputs,
            drop_tombstones,
            output_numbers,
            smallest_snapshot: self
                .snapshots
                .compaction_floor(state.versions.last_sequence),
        })
    }

    fn run_compaction(
        &self,
        state: &mut MutexGuard<'_, DbState>,
        job: CompactionJob,
    ) -> Result<()> {
        let start = Instant::now();

        // Trivial move: a single input with nothing to merge below just moves.
        if job.level > 0 && job.inputs.len() == 1 && job.next_level_inputs.is_empty() {
            let file = &job.inputs[0];
            let mut edit = VersionEdit::default();
            edit.delete_file(job.level, file.number);
            edit.new_files.push((
                job.level + 1,
                crate::version::FileMetaDataEdit {
                    number: file.number,
                    file_size: file.file_size,
                    smallest: file.smallest.encoded().to_vec(),
                    largest: file.largest.encoded().to_vec(),
                },
            ));
            state.compact_pointer[job.level] = file.largest.encoded().to_vec();
            let commit = state.versions.log_and_apply(edit);
            for number in &job.output_numbers {
                state.pending_outputs.remove(number);
            }
            commit?;
            self.counters
                .record_compaction(start.elapsed().as_micros() as u64, 0, 0);
            self.remove_obsolete_files(state);
            return Ok(());
        }

        let bytes_read: u64 = job
            .inputs
            .iter()
            .chain(job.next_level_inputs.iter())
            .map(|f| f.file_size)
            .sum();

        let outputs = MutexGuard::unlocked(state, || self.compaction_io(&job));
        let outputs = match outputs {
            Ok(outputs) => outputs,
            Err(err) => {
                for number in &job.output_numbers {
                    state.pending_outputs.remove(number);
                }
                return Err(err);
            }
        };

        let mut edit = VersionEdit::default();
        for file in &job.inputs {
            edit.delete_file(job.level, file.number);
        }
        for file in &job.next_level_inputs {
            edit.delete_file(job.level + 1, file.number);
        }
        let mut bytes_written = 0;
        for meta in &outputs {
            bytes_written += meta.file_size;
            edit.add_file(job.level + 1, meta);
        }
        if let Some(last_input) = job.inputs.last() {
            state.compact_pointer[job.level] = last_input.largest.encoded().to_vec();
        }
        let commit = state.versions.log_and_apply(edit);
        for number in &job.output_numbers {
            state.pending_outputs.remove(number);
        }
        commit?;
        self.counters.record_compaction(
            start.elapsed().as_micros() as u64,
            bytes_read,
            bytes_written,
        );
        self.remove_obsolete_files(state);
        Ok(())
    }

    /// The IO part of a compaction: merge the inputs and write output tables.
    fn compaction_io(&self, job: &CompactionJob) -> Result<Vec<FileMetaData>> {
        let read_options = ReadOptions::default();
        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        for file in job.inputs.iter().chain(job.next_level_inputs.iter()) {
            children.push(Box::new(self.table_cache.iter(
                &read_options,
                file.number,
                file.file_size,
            )?));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first();

        let mut outputs: Vec<FileMetaData> = Vec::new();
        let mut builder: Option<(u64, TableBuilder)> = None;
        let mut output_index = 0usize;
        let mut last_user_key: Option<Vec<u8>> = None;
        let mut last_sequence_for_key = MAX_SEQUENCE_NUMBER;

        while merged.valid() {
            let key = merged.key().to_vec();
            let parsed = parse_internal_key(&key)
                .ok_or_else(|| Error::corruption("malformed key during compaction"))?;

            let is_same_user_key = last_user_key
                .as_deref()
                .map(|last| last == parsed.user_key)
                .unwrap_or(false);
            if !is_same_user_key {
                last_user_key = Some(parsed.user_key.to_vec());
                last_sequence_for_key = MAX_SEQUENCE_NUMBER;
            }

            // A version may be dropped once a newer version of the same key
            // is visible to every live snapshot; tombstones additionally
            // need no deeper level still holding the key.
            let drop_entry = last_sequence_for_key <= job.smallest_snapshot
                || (job.drop_tombstones
                    && parsed.value_type == ValueType::Deletion
                    && parsed.sequence <= job.smallest_snapshot);
            last_sequence_for_key = parsed.sequence;
            if !drop_entry {
                if builder.is_none() {
                    let number = *job
                        .output_numbers
                        .get(output_index)
                        .ok_or_else(|| Error::internal("ran out of output file numbers"))?;
                    output_index += 1;
                    let path = table_file_name(&self.db_path, number);
                    let file = self.env.new_writable_file(&path)?;
                    builder = Some((number, TableBuilder::new(&self.options, file)));
                }
                let (_, b) = builder.as_mut().expect("builder exists");
                b.add(&key, merged.value())?;
                if b.file_size() >= self.options.max_file_size as u64 {
                    let (number, b) = builder.take().expect("builder exists");
                    outputs.push(finish_output(number, b)?);
                }
            }
            merged.next();
        }
        if let Some((number, b)) = builder.take() {
            if b.num_entries() > 0 {
                outputs.push(finish_output(number, b)?);
            } else {
                b.abandon()?;
            }
        }
        Ok(outputs)
    }

    // -------------------------------------------------------------- cleanup

    fn remove_obsolete_files(&self, state: &mut MutexGuard<'_, DbState>) {
        // If a pinned old version kept files alive in this pass, a later
        // quiesced `flush` must rescan once the pins drop.
        let (live, pinned) = state.versions.live_files_and_pins();
        state.gc_rescan_needed = pinned;
        let log_number = state.versions.log_number;
        let manifest_number = state.versions.manifest_number();
        let children = match self.env.children(&self.db_path) {
            Ok(children) => children,
            Err(_) => return,
        };
        for name in children {
            let Some((ty, number)) = parse_file_name(&name) else {
                continue;
            };
            let keep = match ty {
                FileType::Table => {
                    live.binary_search(&number).is_ok() || state.pending_outputs.contains(&number)
                }
                FileType::WriteAheadLog => number >= log_number || number == state.log_file_number,
                FileType::Descriptor => number >= manifest_number,
                FileType::Temp => false,
                FileType::Current | FileType::Lock | FileType::BtreePages => true,
            };
            if !keep {
                if ty == FileType::Table {
                    self.table_cache.evict(number);
                }
                let _ = self.env.remove_file(&self.db_path.join(&name));
            }
        }
    }

    // ---------------------------------------------------------------- flush

    fn flush(&self) -> Result<()> {
        // Rotate the active memtable through the commit queue so the
        // rotation is serialised with in-flight write groups.
        let needs_rotate = !self.state.lock().mem.is_empty();
        if needs_rotate {
            let ticket = self.commit_queue.submit(None, false);
            match self.commit_queue.wait_turn(&ticket) {
                Role::Done(result) => result?,
                Role::Leader(group) => self.commit(group)?,
            }
        }
        let mut state = self.state.lock();
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            if state.imm.is_some()
                || state.flush_running
                || state.compaction_running
                || state.versions.needs_compaction()
            {
                self.flush_available.notify_one();
                self.work_available.notify_one();
                self.work_done.wait(&mut state);
            } else {
                // Quiesced: reclaim files whose deletion a commit-time GC
                // skipped because a read still pinned their version. Skipped
                // when the last GC saw no pins — it already ran to
                // completion, so rescanning the directory would be wasted
                // work under the state lock.
                if state.gc_rescan_needed {
                    self.remove_obsolete_files(&mut state);
                }
                return Ok(());
            }
        }
    }

    fn stats(&self) -> StoreStats {
        let io = self.env.io_stats().snapshot();
        let state = self.state.lock();
        let version = state.versions.current_unpinned();
        let memory = state.mem.approximate_memory_usage()
            + state
                .imm
                .as_ref()
                .map(|m| m.approximate_memory_usage())
                .unwrap_or(0)
            + self.table_cache.memory_usage();
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live: version.total_bytes(),
            num_files: version.num_files() as u64,
            compactions: EngineCounters::load(&self.counters.compactions),
            flushes: EngineCounters::load(&self.counters.flushes),
            max_concurrent_compactions: EngineCounters::load(
                &self.counters.max_concurrent_compactions,
            ),
            compaction_micros: EngineCounters::load(&self.counters.compaction_micros),
            compaction_bytes_read: EngineCounters::load(&self.counters.compaction_bytes_read),
            compaction_bytes_written: EngineCounters::load(&self.counters.compaction_bytes_written),
            memory_usage_bytes: memory as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: EngineCounters::load(&self.counters.write_stalls),
            write_stall_micros: EngineCounters::load(&self.counters.write_stall_micros),
            memtable_clones: EngineCounters::load(&self.counters.memtable_clones),
        }
    }
}

fn finish_output(number: u64, builder: TableBuilder) -> Result<FileMetaData> {
    let smallest = builder.first_key().map(|k| k.to_vec()).unwrap_or_default();
    let largest = builder.last_key().map(|k| k.to_vec()).unwrap_or_default();
    let size = builder.finish()?;
    Ok(FileMetaData::new(
        number,
        size,
        InternalKey::from_encoded(smallest),
        InternalKey::from_encoded(largest),
    ))
}

/// The sequence number a read issued with `opts` may observe: the requested
/// snapshot, clamped to the store's current sequence.
fn visible_sequence(opts: &ReadOptions, last_sequence: SequenceNumber) -> SequenceNumber {
    opts.snapshot
        .map(|snap| snap.min(last_sequence))
        .unwrap_or(last_sequence)
}

impl KvStore for LsmDb {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.inner.write(batch, opts)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.inner.write(batch, opts)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.inner.write(batch, opts)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.inner.iter(opts)
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.inner.state.lock();
        self.inner.snapshots.acquire(state.versions.last_sequence)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn engine_name(&self) -> String {
        self.inner.preset.name().to_string()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().file_sizes()
    }
}
