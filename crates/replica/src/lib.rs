//! `pebblesdb-replica`: WAL-shipping read replicas over the engine chassis.
//!
//! A [`FollowerDb`] is a normal chassis store that never accepts local
//! writes. A background thread connects to a leader's RESP listener, issues
//! `SYNC <applied + 1>`, and applies every shipped batch through the
//! presequenced commit path — the follower's WAL, memtables, sstables and
//! sequence space are byte-for-byte driven by the leader's committed batch
//! stream, so its own recovery machinery doubles as the replication
//! checkpoint: on restart the durable applied sequence *is*
//! `EngineDb::last_sequence`, and the thread resumes from there.
//!
//! ## Resume and exactly-once apply
//!
//! The leader re-delivers any batch whose `last_seq >= cursor`, so a batch
//! interrupted mid-ship arrives again after a reconnect. The follower skips
//! batches with `last_seq <= applied` (already committed locally) and
//! applies everything else in commit order: no batch is applied twice, none
//! is skipped, across either side restarting.
//!
//! ## Truncation
//!
//! When the leader has reclaimed the WAL history behind the follower's
//! cursor (only possible under an explicit
//! [`cdc_wal_retain_segments`](pebblesdb_common::StoreOptions) cap), the
//! stream ends with a `TRUNCATED` frame. That is fatal for this replica:
//! it stops reconnecting, reports [`FollowerDb::truncated`], and must be
//! re-seeded from a fresh copy of the leader.
//!
//! ## Reads
//!
//! Reads serve locally at the follower's applied frontier. Batches commit
//! atomically, so a [`Snapshot`](pebblesdb_common::Snapshot) taken between
//! applies pins a consistent prefix of the leader's history — a reader
//! never observes half a batch, even while the apply thread is running.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pebblesdb_common::replication::ChangeStream;
use pebblesdb_common::resp::RespValue;
use pebblesdb_common::{
    CfId, CfOps, CfStats, ColumnFamilyHandle, Db, DbIterator, Error, KvStore, ReadOptions,
    ReplicationFrame, Result, SequenceNumber, Snapshot, StoreOptions, StoreStats, WriteBatch,
    WriteOptions,
};
use pebblesdb_engine::{EngineDb, ShapePolicy};
use pebblesdb_server::RespClient;

/// How a follower finds and talks to its leader.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The leader's RESP listener address (`host:port`).
    pub leader_addr: String,
    /// Credential for the leader's `AUTH`, when it requires one.
    pub auth_token: Option<Vec<u8>>,
    /// First reconnect delay after a broken stream; doubles per attempt.
    pub reconnect_backoff: Duration,
    /// Reconnect delay cap.
    pub max_reconnect_backoff: Duration,
    /// A stream with no frame (batch or ping) for this long is considered
    /// dead and reconnected. The leader pings every poll interval (~100ms)
    /// while idle, so this fires only when the leader is actually gone.
    pub liveness_timeout: Duration,
}

impl Default for FollowerConfig {
    fn default() -> FollowerConfig {
        FollowerConfig {
            leader_addr: String::new(),
            auth_token: None,
            reconnect_backoff: Duration::from_millis(50),
            max_reconnect_backoff: Duration::from_secs(1),
            liveness_timeout: Duration::from_secs(3),
        }
    }
}

/// Shared between the replication thread and the read facade.
struct FollowerState {
    shutdown: AtomicBool,
    /// Highest `last_seq` durably applied (the resume cursor is this + 1).
    applied: AtomicU64,
    /// The leader's last advertised committed sequence.
    leader_seq: AtomicU64,
    /// The leader's last advertised backlog for this cursor, in batches.
    backlog: AtomicU64,
    connected: AtomicBool,
    truncated: AtomicBool,
    batches_applied: AtomicU64,
    batches_skipped: AtomicU64,
    last_error: Mutex<Option<String>>,
}

/// Why one stream attempt ended.
enum StreamEnd {
    /// [`FollowerDb`] is shutting down; do not reconnect.
    Shutdown,
    /// The leader reclaimed the cursor's history; fatal, do not reconnect.
    Truncated(SequenceNumber),
    /// Connection-level failure (connect, handshake, read, apply);
    /// reconnect with backoff and resume from the applied sequence.
    Broken(String),
}

/// A read replica: a chassis store fed exclusively by a leader's change
/// stream. Implements [`Db`] read-only — every mutation is rejected.
pub struct FollowerDb<P: ShapePolicy> {
    db: Arc<EngineDb<P>>,
    state: Arc<FollowerState>,
    thread: Option<JoinHandle<()>>,
}

impl<P: ShapePolicy> FollowerDb<P> {
    /// Opens (creating if necessary) a follower store at `path` and starts
    /// replicating from `config.leader_addr`. `make_policy` builds the tree
    /// shape from the options, exactly as the standalone engines do.
    pub fn open_with<F>(
        make_policy: F,
        env: Arc<dyn pebblesdb_env::Env>,
        path: &std::path::Path,
        options: StoreOptions,
        config: FollowerConfig,
    ) -> Result<FollowerDb<P>>
    where
        F: FnOnce(&StoreOptions) -> P,
    {
        let policy = make_policy(&options);
        let db = Arc::new(EngineDb::open(policy, env, path, options)?);
        let state = Arc::new(FollowerState {
            shutdown: AtomicBool::new(false),
            // Recovery already replayed the local WAL: the engine's last
            // sequence is exactly the highest leader batch durably applied.
            applied: AtomicU64::new(db.last_sequence()),
            leader_seq: AtomicU64::new(db.last_sequence()),
            backlog: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            batches_applied: AtomicU64::new(0),
            batches_skipped: AtomicU64::new(0),
            last_error: Mutex::new(None),
        });
        let thread = {
            let db = Arc::clone(&db);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("pebblesdb-follower".to_string())
                .spawn(move || replication_loop(&db, &state, &config))
                .map_err(|err| Error::internal(format!("spawn follower thread: {err}")))?
        };
        Ok(FollowerDb {
            db,
            state,
            thread: Some(thread),
        })
    }

    /// The highest sequence number this replica has durably applied.
    pub fn applied_sequence(&self) -> SequenceNumber {
        self.state.applied.load(Ordering::Acquire)
    }

    /// The leader's last advertised committed sequence (its frontier).
    pub fn leader_sequence(&self) -> SequenceNumber {
        self.state.leader_seq.load(Ordering::Acquire)
    }

    /// The leader's last advertised backlog for this replica, in batches.
    pub fn lag_batches(&self) -> u64 {
        self.state.backlog.load(Ordering::Acquire)
    }

    /// Whether the replication stream is currently established.
    pub fn is_connected(&self) -> bool {
        self.state.connected.load(Ordering::Acquire)
    }

    /// Whether the leader truncated this replica's history (fatal: the
    /// replica stopped replicating and must be re-seeded).
    pub fn truncated(&self) -> bool {
        self.state.truncated.load(Ordering::Acquire)
    }

    /// The most recent stream error, for diagnostics.
    pub fn last_error(&self) -> Option<String> {
        self.state.last_error.lock().clone()
    }

    /// Batches applied by this process (excludes skipped re-deliveries).
    pub fn batches_applied(&self) -> u64 {
        self.state.batches_applied.load(Ordering::Acquire)
    }

    /// Re-delivered batches skipped because they were already applied.
    pub fn batches_skipped(&self) -> u64 {
        self.state.batches_skipped.load(Ordering::Acquire)
    }

    /// The underlying chassis store (for tests and tooling; note the
    /// engine's own surface is *not* write-protected).
    pub fn engine(&self) -> &EngineDb<P> {
        &self.db
    }

    /// Stops the replication thread and closes the store.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    fn read_only() -> Error {
        read_only()
    }
}

impl<P: ShapePolicy> Drop for FollowerDb<P> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Connect → handshake → apply frames, reconnecting with capped exponential
/// backoff until shutdown or truncation.
fn replication_loop<P: ShapePolicy>(
    db: &Arc<EngineDb<P>>,
    state: &Arc<FollowerState>,
    config: &FollowerConfig,
) {
    let mut backoff = config.reconnect_backoff;
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let end = ship_once(db, state, config);
        state.connected.store(false, Ordering::Release);
        match end {
            StreamEnd::Shutdown => return,
            StreamEnd::Truncated(floor) => {
                *state.last_error.lock() = Some(format!(
                    "leader truncated history through sequence {floor}; re-seed this replica"
                ));
                state.truncated.store(true, Ordering::Release);
                return;
            }
            StreamEnd::Broken(msg) => {
                *state.last_error.lock() = Some(msg);
            }
        }
        // Sleep in short slices so shutdown is honored promptly.
        let deadline = Instant::now() + backoff;
        while Instant::now() < deadline {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        backoff = (backoff * 2).min(config.max_reconnect_backoff);
    }
}

/// One stream attempt: returns why it ended.
fn ship_once<P: ShapePolicy>(
    db: &EngineDb<P>,
    state: &FollowerState,
    config: &FollowerConfig,
) -> StreamEnd {
    let broken = |what: &str, err: &dyn std::fmt::Display| -> StreamEnd {
        StreamEnd::Broken(format!("{what}: {err}"))
    };
    let mut client = match RespClient::connect(&config.leader_addr) {
        Ok(client) => client,
        Err(err) => return broken("connect", &err),
    };
    if client.set_timeout(Some(Duration::from_secs(1))).is_err() {
        return StreamEnd::Broken("set handshake timeout".to_string());
    }
    if let Some(token) = &config.auth_token {
        if let Err(err) = client.command_ok(&[b"AUTH", token]) {
            return broken("AUTH", &err);
        }
    }
    let from_seq = state.applied.load(Ordering::Acquire) + 1;
    if let Err(err) = client.command_ok(&[b"SYNC", from_seq.to_string().as_bytes()]) {
        return broken("SYNC", &err);
    }
    // Short read timeout from here on: the loop must notice shutdown even
    // when the leader goes silent without closing the socket.
    let _ = client.set_timeout(Some(Duration::from_millis(100)));
    state.connected.store(true, Ordering::Release);
    let mut last_frame = Instant::now();
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return StreamEnd::Shutdown;
        }
        let value = match client.read_reply() {
            Ok(value) => value,
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= config.liveness_timeout {
                    return StreamEnd::Broken("leader silent past liveness timeout".to_string());
                }
                continue;
            }
            Err(err) => return broken("read", &err),
        };
        last_frame = Instant::now();
        if let RespValue::Error(msg) = value {
            return StreamEnd::Broken(format!("leader error: {msg}"));
        }
        let frame = match ReplicationFrame::parse(value) {
            Ok(frame) => frame,
            Err(err) => return broken("frame", &err),
        };
        match frame {
            ReplicationFrame::Catalog(cfs) => {
                if let Err(err) = mirror_catalog(db, &cfs) {
                    return broken("catalog", &err);
                }
            }
            ReplicationFrame::Batch {
                last_seq,
                backlog,
                contents,
            } => {
                state.backlog.store(backlog, Ordering::Release);
                bump_max(&state.leader_seq, last_seq);
                let applied = state.applied.load(Ordering::Acquire);
                if last_seq <= applied {
                    // A re-delivered batch after a torn stream: already
                    // durably committed here, skip it.
                    state.batches_skipped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let batch = match WriteBatch::from_contents(contents) {
                    Ok(batch) => batch,
                    Err(err) => return broken("batch decode", &err),
                };
                if batch.count() == 0 {
                    continue;
                }
                if let Err(err) = db.write_presequenced(&WriteOptions { sync: false }, batch) {
                    return broken("apply", &err);
                }
                state.applied.store(last_seq, Ordering::Release);
                state.batches_applied.fetch_add(1, Ordering::Relaxed);
            }
            ReplicationFrame::Ping { last_seq, backlog } => {
                state.backlog.store(backlog, Ordering::Release);
                bump_max(&state.leader_seq, last_seq);
            }
            ReplicationFrame::Truncated { floor } => return StreamEnd::Truncated(floor),
        }
    }
}

fn bump_max(cell: &AtomicU64, value: u64) {
    let mut current = cell.load(Ordering::Acquire);
    while value > current {
        match cell.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// Mirrors the leader's family catalog bit-for-bit: creates advertised
/// families under their leader-side ids, drops local families the leader no
/// longer lists. Idempotent — re-advertised catalogs are cheap no-ops.
fn mirror_catalog<P: ShapePolicy>(db: &EngineDb<P>, cfs: &[(CfId, String)]) -> Result<()> {
    for (id, name) in cfs {
        if *id == 0 {
            continue; // The default family always exists under id 0.
        }
        db.create_cf_with_id(*id, name)?;
    }
    for local in db.cf_stats() {
        if local.id != 0 && !cfs.iter().any(|(id, _)| *id == local.id) {
            db.drop_cf(&local.name)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The read-only facade.
// ---------------------------------------------------------------------------

/// Family-scoped ops for handles vended by a [`FollowerDb`]: reads delegate
/// to the engine handle, mutations are rejected. (Handles taken straight
/// from the engine would accept writes; the facade re-wraps them.)
struct ReadOnlyCf {
    inner: ColumnFamilyHandle,
    base_engine: String,
}

impl CfOps for ReadOnlyCf {
    fn cf_put_opts(&self, _cf: CfId, _o: &WriteOptions, _k: &[u8], _v: &[u8]) -> Result<()> {
        Err(read_only())
    }
    fn cf_get_opts(&self, _cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get_opts(opts, key)
    }
    fn cf_delete_opts(&self, _cf: CfId, _o: &WriteOptions, _k: &[u8]) -> Result<()> {
        Err(read_only())
    }
    fn cf_write_opts(&self, _o: &WriteOptions, _b: WriteBatch) -> Result<()> {
        Err(read_only())
    }
    fn cf_iter(&self, _cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.inner.iter(opts)
    }
    fn cf_snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }
    fn cf_flush(&self) -> Result<()> {
        self.inner.flush()
    }
    fn cf_kv_stats(&self, _cf: CfId) -> StoreStats {
        self.inner.stats()
    }
    fn cf_live_file_sizes(&self, _cf: CfId) -> Vec<u64> {
        self.inner.live_file_sizes()
    }
    fn cf_engine_name(&self) -> String {
        self.base_engine.clone()
    }
}

/// The facade's rejection error, shared between the store-level and
/// handle-level surfaces.
fn read_only() -> Error {
    Error::invalid_argument("follower is read-only; write to the leader")
}

impl<P: ShapePolicy> KvStore for FollowerDb<P> {
    fn put_opts(&self, _opts: &WriteOptions, _key: &[u8], _value: &[u8]) -> Result<()> {
        Err(Self::read_only())
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get_opts(opts, key)
    }

    fn delete_opts(&self, _opts: &WriteOptions, _key: &[u8]) -> Result<()> {
        Err(Self::read_only())
    }

    fn write_opts(&self, _opts: &WriteOptions, _batch: WriteBatch) -> Result<()> {
        Err(Self::read_only())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.db.iter(opts)
    }

    fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }

    fn flush(&self) -> Result<()> {
        // Local maintenance, not a logical write: lets operators persist
        // the applied state on demand.
        self.db.flush()
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.db.stats();
        stats.replica_applied_seq = self.applied_sequence();
        stats.replica_lag_batches = self.lag_batches();
        stats
    }

    fn engine_name(&self) -> String {
        format!("{}-follower", self.db.engine_name())
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.db.live_file_sizes()
    }
}

impl<P: ShapePolicy> Db for FollowerDb<P> {
    fn create_cf(&self, _name: &str) -> Result<ColumnFamilyHandle> {
        Err(Self::read_only())
    }

    fn drop_cf(&self, _name: &str) -> Result<()> {
        Err(Self::read_only())
    }

    fn list_cfs(&self) -> Vec<String> {
        self.db.list_cfs()
    }

    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        let inner = self.db.cf(name)?;
        let id = inner.id();
        Some(ColumnFamilyHandle::new(
            Arc::new(ReadOnlyCf {
                inner,
                base_engine: self.db.engine_name(),
            }),
            id,
            name,
        ))
    }

    fn cf_stats(&self) -> Vec<CfStats> {
        self.db.cf_stats()
    }

    fn stream(&self, from_seq: SequenceNumber) -> Result<Box<dyn ChangeStream>> {
        // A follower can itself be streamed from (chained replication).
        Ok(Box::new(self.db.change_stream(from_seq)?))
    }

    fn committed_sequence(&self) -> SequenceNumber {
        self.applied_sequence()
    }

    fn shard_stats(&self) -> Vec<StoreStats> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_max_is_monotonic_under_stale_writers() {
        let cell = AtomicU64::new(0);
        bump_max(&cell, 7);
        assert_eq!(cell.load(Ordering::Acquire), 7);
        // A stale (lower) observation must never move the frontier back.
        bump_max(&cell, 3);
        assert_eq!(cell.load(Ordering::Acquire), 7);
        bump_max(&cell, 9);
        assert_eq!(cell.load(Ordering::Acquire), 9);
    }

    #[test]
    fn read_only_rejection_names_the_leader() {
        let err = read_only();
        assert!(err.to_string().contains("read-only"), "got: {err}");
        assert!(err.to_string().contains("leader"), "got: {err}");
    }

    #[test]
    fn config_defaults_back_off_without_exceeding_the_cap() {
        let config = FollowerConfig::default();
        assert!(config.reconnect_backoff <= config.max_reconnect_backoff);
        assert!(config.liveness_timeout > Duration::ZERO);
        assert!(config.auth_token.is_none());
        // A follower that doubles its backoff from the default must settle
        // exactly at the cap, not oscillate past it.
        let mut backoff = config.reconnect_backoff;
        for _ in 0..16 {
            backoff = (backoff * 2).min(config.max_reconnect_backoff);
        }
        assert_eq!(backoff, config.max_reconnect_backoff);
    }
}
