//! Bloom filters for block-level and sstable-level key membership tests.
//!
//! PebblesDB attaches a bloom filter to *every sstable* so a `get()` that has
//! located the right guard can skip the sstables that cannot contain the key
//! (section 4.1 of the paper). The same policy doubles as the per-block
//! filter used by the baseline engine.
//!
//! The filter uses the standard double-hashing construction: a single base
//! hash is split into `k` probe positions by repeatedly adding a rotated
//! delta, the scheme used by the LevelDB family.

pub mod policy;

pub use policy::{BloomFilterBuilder, BloomFilterPolicy};

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let policy = BloomFilterPolicy::new(10);
        let keys: Vec<Vec<u8>> = (0..1000).map(key).collect();
        let filter = policy.create_filter(&keys);
        for k in &keys {
            assert!(
                policy.key_may_match(k, &filter),
                "bloom filter must never produce a false negative"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let policy = BloomFilterPolicy::new(10);
        let keys: Vec<Vec<u8>> = (0..10_000).map(key).collect();
        let filter = policy.create_filter(&keys);
        let mut false_positives = 0;
        let probes = 10_000;
        for i in 0..probes {
            if policy.key_may_match(&key(1_000_000 + i), &filter) {
                false_positives += 1;
            }
        }
        // 10 bits/key gives ~1% theoretical FP rate; allow generous slack.
        assert!(
            (false_positives as f64) / (probes as f64) < 0.03,
            "false positive rate too high: {false_positives}/{probes}"
        );
    }

    #[test]
    fn empty_filter_rejects_everything_cheaply() {
        let policy = BloomFilterPolicy::new(10);
        let filter = policy.create_filter(&[]);
        // An empty filter may be a single metadata byte; lookups must not panic.
        let _ = policy.key_may_match(b"anything", &filter);
    }

    #[test]
    fn builder_and_batch_creation_agree() {
        let policy = BloomFilterPolicy::new(8);
        let keys: Vec<Vec<u8>> = (0..500).map(key).collect();
        let batch = policy.create_filter(&keys);

        let mut builder = BloomFilterBuilder::new(8, keys.len());
        for k in &keys {
            builder.add_key(k);
        }
        let incremental = builder.finish();
        assert_eq!(batch, incremental);
    }
}
