//! The bloom filter policy and incremental builder.

use pebblesdb_common::hash::bloom_hash;

/// A bloom filter policy parameterised by bits per key.
///
/// `create_filter` produces a byte array whose last byte records the number
/// of probes `k`, so readers do not need out-of-band configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomFilterPolicy {
    bits_per_key: usize,
    k: usize,
}

impl BloomFilterPolicy {
    /// Creates a policy using `bits_per_key` filter bits for every key.
    pub fn new(bits_per_key: usize) -> Self {
        // k = bits_per_key * ln(2) rounded, clamped to a sane range.
        let mut k = (bits_per_key as f64 * 0.69) as usize;
        k = k.clamp(1, 30);
        BloomFilterPolicy { bits_per_key, k }
    }

    /// The number of probe positions per key.
    pub fn num_probes(&self) -> usize {
        self.k
    }

    /// The configured bits per key.
    pub fn bits_per_key(&self) -> usize {
        self.bits_per_key
    }

    /// Builds a filter over `keys`.
    pub fn create_filter(&self, keys: &[Vec<u8>]) -> Vec<u8> {
        let mut builder = BloomFilterBuilder::new(self.bits_per_key, keys.len());
        for key in keys {
            builder.add_key(key);
        }
        builder.finish()
    }

    /// Returns `false` only if `key` was definitely not added to `filter`.
    pub fn key_may_match(&self, key: &[u8], filter: &[u8]) -> bool {
        if filter.len() < 2 {
            // A degenerate filter cannot exclude anything reliably; treat the
            // single metadata byte (or empty array) as "maybe".
            return !filter.is_empty();
        }
        let bits = (filter.len() - 1) * 8;
        let k = filter[filter.len() - 1] as usize;
        if k > 30 {
            // Reserved for future encodings; err on the side of a false
            // positive rather than losing data.
            return true;
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit_pos = (h as usize) % bits;
            if filter[bit_pos / 8] & (1 << (bit_pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

/// Incrementally builds a bloom filter without buffering the keys.
///
/// The sstable builder uses this so large tables do not need to keep every
/// key in memory just to build the filter at the end.
#[derive(Debug, Clone)]
pub struct BloomFilterBuilder {
    bits: Vec<u8>,
    num_bits: usize,
    k: usize,
}

impl BloomFilterBuilder {
    /// Creates a builder sized for `expected_keys` keys at `bits_per_key`.
    pub fn new(bits_per_key: usize, expected_keys: usize) -> Self {
        let policy = BloomFilterPolicy::new(bits_per_key);
        let mut num_bits = expected_keys.saturating_mul(bits_per_key);
        // Tiny filters have disproportionately high false-positive rates.
        if num_bits < 64 {
            num_bits = 64;
        }
        let num_bytes = num_bits.div_ceil(8);
        BloomFilterBuilder {
            bits: vec![0u8; num_bytes],
            num_bits: num_bytes * 8,
            k: policy.num_probes(),
        }
    }

    /// Adds one key to the filter.
    pub fn add_key(&mut self, key: &[u8]) {
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..self.k {
            let bit_pos = (h as usize) % self.num_bits;
            self.bits[bit_pos / 8] |= 1 << (bit_pos % 8);
            h = h.wrapping_add(delta);
        }
    }

    /// Approximate heap memory the finished filter will occupy, in bytes.
    pub fn memory_usage(&self) -> usize {
        self.bits.len() + 1
    }

    /// Finalises the filter, appending the probe count as the last byte.
    pub fn finish(mut self) -> Vec<u8> {
        self.bits.push(self.k as u8);
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_count_scales_with_bits_per_key() {
        assert_eq!(BloomFilterPolicy::new(10).num_probes(), 6);
        assert!(BloomFilterPolicy::new(1).num_probes() >= 1);
        assert!(BloomFilterPolicy::new(100).num_probes() <= 30);
    }

    #[test]
    fn filter_encodes_probe_count_in_last_byte() {
        let policy = BloomFilterPolicy::new(10);
        let filter = policy.create_filter(&[b"a".to_vec()]);
        assert_eq!(*filter.last().unwrap() as usize, policy.num_probes());
    }

    #[test]
    fn minimum_filter_size_is_enforced() {
        let builder = BloomFilterBuilder::new(10, 1);
        assert!(builder.memory_usage() >= 8);
    }

    #[test]
    fn unknown_probe_count_is_treated_as_match() {
        let policy = BloomFilterPolicy::new(10);
        let filter = vec![0u8, 0, 0, 0, 200];
        assert!(policy.key_may_match(b"whatever", &filter));
    }

    #[test]
    fn keys_not_added_are_usually_rejected() {
        let policy = BloomFilterPolicy::new(12);
        let keys: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("present-{i}").into_bytes())
            .collect();
        let filter = policy.create_filter(&keys);
        let mut rejected = 0;
        for i in 0..100 {
            if !policy.key_may_match(format!("absent-{i}").as_bytes(), &filter) {
                rejected += 1;
            }
        }
        assert!(rejected > 90, "only {rejected} of 100 absent keys rejected");
    }
}
