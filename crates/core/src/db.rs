//! PebblesDB: the FLSM-based key-value store.
//!
//! The write path (WAL + memtable + level-0 flush) matches the
//! HyperLevelDB-style baseline, because PebblesDB was built by modifying
//! HyperLevelDB (section 4.4 of the paper). Everything below level 0 is
//! different: levels are organised by guards, compaction fragments data into
//! child guards instead of rewriting the next level, and reads use
//! sstable-level bloom filters, parallel seeks and seek-triggered compaction
//! to claw back the read performance the FLSM structure gives up.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use pebblesdb_common::commit::{CommitGroup, CommitQueue, Role};
use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::{log_file_name, parse_file_name, table_file_name, FileType};
use pebblesdb_common::iterator::{DbIterator, MergingIterator, PinnedIterator};
use pebblesdb_common::key::{InternalKey, LookupKey, SequenceNumber, ValueType};
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::user_iter::UserIterator;
use pebblesdb_common::{
    Error, KvStore, ReadOptions, Result, StoreOptions, StorePreset, StoreStats, WriteBatch,
    WriteOptions,
};
use pebblesdb_env::Env;
use pebblesdb_lsm::FileMetaData;
use pebblesdb_skiplist::memtable::MemTableGet;
use pebblesdb_skiplist::MemTable;
use pebblesdb_sstable::{TableBuilder, TableCache};
use pebblesdb_wal::{LogReader, LogWriter};

use crate::compaction::{build_compaction_job, run_compaction_io, FlsmCompactionJob};
use crate::guards::{GuardPicker, UncommittedGuards};
use crate::version::{CompactionReason, FlsmVersionEdit, FlsmVersionSet};

/// A handle to an open PebblesDB database.
pub struct PebblesDb {
    inner: Arc<DbInner>,
    background_threads: Mutex<Vec<JoinHandle<()>>>,
}

struct DbInner {
    options: StoreOptions,
    env: Arc<dyn Env>,
    db_path: PathBuf,
    table_cache: Arc<TableCache>,
    guard_picker: GuardPicker,
    state: Mutex<DbState>,
    /// Group-commit writer queue: concurrent writers enqueue batches, one
    /// leader merges the group and performs WAL IO outside `state`.
    commit_queue: CommitQueue,
    /// Wakes the compaction worker pool.
    work_available: Condvar,
    /// Wakes the dedicated flush thread (imm -> level 0 never queues behind
    /// a large level compaction).
    flush_available: Condvar,
    /// Wakes writers stalled in `make_room_for_write` and `flush` callers.
    work_done: Condvar,
    shutting_down: AtomicBool,
    counters: EngineCounters,
    /// Consecutive seeks since the last write (seek-triggered compaction).
    consecutive_seeks: AtomicUsize,
    engine_label: String,
    snapshots: Arc<SnapshotList>,
}

struct DbState {
    /// The active memtable. Concurrent: the group-commit leader inserts via
    /// `&self` while `get` and streaming cursors read it lock-free, so the
    /// table is never cloned — when full it is frozen whole into `imm`.
    mem: Arc<MemTable>,
    imm: Option<Arc<MemTable>>,
    versions: FlsmVersionSet,
    uncommitted_guards: UncommittedGuards,
    log: Option<LogWriter>,
    log_file_number: u64,
    /// Input file numbers of every in-flight compaction job. A worker
    /// claiming new work never selects a guard whose files intersect this
    /// set, so concurrent jobs always operate on disjoint guard subsets.
    claimed_inputs: BTreeSet<u64>,
    /// Output file numbers of uncommitted jobs (flushes and compactions).
    /// `remove_obsolete_files` must never delete these: they are invisible
    /// to every version until their job's `log_and_apply` commits.
    pending_outputs: BTreeSet<u64>,
    /// Level-compaction jobs currently claimed or running.
    active_compactions: usize,
    /// Whether the flush thread is writing `imm` to level 0 right now.
    flush_running: bool,
    /// Set when the last GC pass ran while a read or cursor still pinned an
    /// old version (whose files it therefore kept); `flush` on a quiesced
    /// store rescans only in that case instead of on every call.
    gc_rescan_needed: bool,
    seek_compaction_pending: bool,
    bg_error: Option<Error>,
}

impl PebblesDb {
    /// Opens (creating if necessary) a PebblesDB database at `path`.
    pub fn open(env: Arc<dyn Env>, path: &Path) -> Result<PebblesDb> {
        Self::open_with_options(env, path, StoreOptions::with_preset(StorePreset::PebblesDb))
    }

    /// Opens a database with explicit options.
    pub fn open_with_options(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
    ) -> Result<PebblesDb> {
        let label = if options.max_sstables_per_guard == 1 {
            StorePreset::PebblesDb1.name().to_string()
        } else {
            StorePreset::PebblesDb.name().to_string()
        };
        env.create_dir_all(path)?;
        let table_cache = Arc::new(TableCache::new(
            Arc::clone(&env),
            path.to_path_buf(),
            options.clone(),
            options.max_open_files,
        ));
        let mut versions =
            FlsmVersionSet::new(Arc::clone(&env), path.to_path_buf(), options.clone());

        let current_exists = env.file_exists(&pebblesdb_common::filename::current_file_name(path));
        if current_exists {
            if options.error_if_exists {
                return Err(Error::invalid_argument("database already exists"));
            }
            versions.recover()?;
        } else {
            if !options.create_if_missing {
                return Err(Error::invalid_argument("database does not exist"));
            }
            versions.create_new()?;
        }

        let mut state = DbState {
            mem: Arc::new(MemTable::new()),
            imm: None,
            versions,
            uncommitted_guards: UncommittedGuards::new(options.max_levels),
            log: None,
            log_file_number: 0,
            claimed_inputs: BTreeSet::new(),
            pending_outputs: BTreeSet::new(),
            active_compactions: 0,
            flush_running: false,
            gc_rescan_needed: false,
            seek_compaction_pending: false,
            bg_error: None,
        };

        recover_wals(env.as_ref(), path, &options, &mut state)?;

        let log_number = state.versions.new_file_number();
        let log_file = env.new_writable_file(&log_file_name(path, log_number))?;
        state.log = Some(LogWriter::new(log_file));
        state.log_file_number = log_number;
        let edit = FlsmVersionEdit {
            log_number: Some(log_number),
            ..Default::default()
        };
        state.versions.log_and_apply(edit)?;

        let inner = Arc::new(DbInner {
            guard_picker: GuardPicker::new(&options),
            options,
            env,
            db_path: path.to_path_buf(),
            table_cache,
            state: Mutex::new(state),
            commit_queue: CommitQueue::new(),
            work_available: Condvar::new(),
            flush_available: Condvar::new(),
            work_done: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            counters: EngineCounters::new(),
            consecutive_seeks: AtomicUsize::new(0),
            engine_label: label,
            snapshots: SnapshotList::new(),
        });

        {
            let mut state = inner.state.lock();
            inner.remove_obsolete_files(&mut state);
        }

        // The background subsystem: one dedicated flush thread (imm -> L0
        // never waits behind a large compaction) plus a pool of
        // `compaction_threads` workers that each claim a disjoint guard
        // subset of a level as an independent job.
        let mut handles = Vec::new();
        let flush_inner = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name("pebblesdb-flush".to_string())
                .spawn(move || DbInner::flush_main(flush_inner))
                .map_err(|e| Error::internal(format!("spawn flush thread: {e}")))?,
        );
        for worker in 0..inner.options.compaction_threads.max(1) {
            let bg_inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pebblesdb-compact-{worker}"))
                    .spawn(move || DbInner::compaction_worker_main(bg_inner))
                    .map_err(|e| Error::internal(format!("spawn compaction thread: {e}")))?,
            );
        }

        Ok(PebblesDb {
            inner,
            background_threads: Mutex::new(handles),
        })
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.inner.options
    }

    /// Per-level summary string (files and guards per level).
    pub fn level_summary(&self) -> String {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().level_summary()
    }

    /// Number of guards (including the sentinel) at each level.
    pub fn guards_per_level(&self) -> Vec<usize> {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().guards_per_level()
    }

    /// Number of files at each level.
    pub fn files_per_level(&self) -> Vec<usize> {
        let state = self.inner.state.lock();
        let version = state.versions.current_unpinned();
        (0..version.num_levels())
            .map(|l| version.level_files(l))
            .collect()
    }

    /// Total number of guards that currently hold no sstables.
    pub fn empty_guards(&self) -> usize {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().empty_guards()
    }

    /// Flushes the memtable and waits until no compaction work is pending.
    pub fn compact_all(&self) -> Result<()> {
        self.flush()
    }
}

impl Drop for PebblesDb {
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.work_available.notify_all();
        self.inner.flush_available.notify_all();
        for handle in self.background_threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Replays write-ahead logs newer than the manifest's log number.
fn recover_wals(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    state: &mut DbState,
) -> Result<()> {
    let min_log = state.versions.log_number;
    let mut log_numbers: Vec<u64> = env
        .children(db_path)?
        .iter()
        .filter_map(|name| parse_file_name(name))
        .filter(|(ty, number)| *ty == FileType::WriteAheadLog && *number >= min_log)
        .map(|(_, number)| number)
        .collect();
    log_numbers.sort_unstable();

    for number in log_numbers {
        state.versions.mark_file_number_used(number);
        let file = env.new_sequential_file(&log_file_name(db_path, number))?;
        let mut reader = LogReader::new(file);
        // A clean end or a torn tail both end replay of this log.
        while let Ok(Some(record)) = reader.read_record() {
            let batch = match WriteBatch::from_contents(record) {
                Ok(batch) => batch,
                Err(_) => break,
            };
            let base_seq = batch.sequence();
            let mut applied = 0u64;
            for item in batch.iter() {
                let item = match item {
                    Ok(item) => item,
                    Err(_) => break,
                };
                state
                    .mem
                    .add(item.sequence, item.value_type, item.key, item.value);
                applied += 1;
            }
            let last = base_seq + applied.saturating_sub(1);
            if last > state.versions.last_sequence {
                state.versions.last_sequence = last;
            }
            if state.mem.approximate_memory_usage() > options.write_buffer_size {
                flush_recovery_memtable(env, db_path, options, state)?;
            }
        }
    }
    if !state.mem.is_empty() {
        flush_recovery_memtable(env, db_path, options, state)?;
    }
    Ok(())
}

fn flush_recovery_memtable(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    state: &mut DbState,
) -> Result<()> {
    let number = state.versions.new_file_number();
    let mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
    if let Some(meta) = build_table_from_memtable(env, db_path, options, &mem, number)? {
        let mut edit = FlsmVersionEdit::default();
        edit.add_file(0, &meta);
        state.versions.log_and_apply(edit)?;
    }
    Ok(())
}

/// Writes the contents of a memtable into a new level-0 sstable.
fn build_table_from_memtable(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    mem: &MemTable,
    file_number: u64,
) -> Result<Option<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    if !iter.valid() {
        return Ok(None);
    }
    let file = env.new_writable_file(&table_file_name(db_path, file_number))?;
    let mut builder = TableBuilder::new(options, file);
    let mut smallest: Option<Vec<u8>> = None;
    let mut largest: Vec<u8> = Vec::new();
    while iter.valid() {
        if smallest.is_none() {
            smallest = Some(iter.key().to_vec());
        }
        largest = iter.key().to_vec();
        builder.add(iter.key(), iter.value())?;
        iter.next();
    }
    let file_size = builder.finish()?;
    Ok(Some(FileMetaData::new(
        file_number,
        file_size,
        InternalKey::from_encoded(smallest.unwrap_or_default()),
        InternalKey::from_encoded(largest),
    )))
}

/// The sequence number a read issued with `opts` may observe: the requested
/// snapshot, clamped to the store's current sequence.
fn visible_sequence(opts: &ReadOptions, last_sequence: SequenceNumber) -> SequenceNumber {
    opts.snapshot
        .map(|snap| snap.min(last_sequence))
        .unwrap_or(last_sequence)
}

impl DbInner {
    // ---------------------------------------------------------------- write

    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Writes reset the consecutive-seek counter (section 4.2: seek-based
        // compaction targets read-only phases).
        self.consecutive_seeks.store(0, Ordering::Relaxed);

        let mut user_bytes = 0u64;
        for record in batch.iter() {
            let record = record?;
            user_bytes += (record.key.len() + record.value.len()) as u64;
        }

        let ticket = self.commit_queue.submit(Some(batch), opts.sync);
        let result = match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result,
            Role::Leader(group) => self.commit(group),
        };
        if result.is_ok() {
            self.counters.add_user_bytes(user_bytes);
        }
        result
    }

    /// Commits a write group as its leader: make room, reserve a sequence
    /// range, then append + sync the WAL and apply the merged batch to the
    /// concurrent memtable **outside** the state mutex, so readers and the
    /// compaction thread proceed during the IO. Guard selection (a pure hash
    /// of each key) also runs unlocked; the chosen guards are registered
    /// under the lock after the apply. The new sequence is only published
    /// (making the group visible) after the apply succeeds.
    fn commit(&self, mut group: CommitGroup) -> Result<()> {
        let mut state = self.state.lock();
        let force = group.force_rotate && !state.mem.is_empty();
        let mut result = self.make_room_for_write(&mut state, force);

        if result.is_ok() && !group.batch.is_empty() {
            let seq = state.versions.last_sequence + 1;
            group.batch.set_sequence(seq);
            let count = u64::from(group.batch.count());

            // Only the leader (that's us, until `complete`) touches the log
            // or inserts into `mem`, so both can leave the mutex.
            let mut log = state.log.take();
            let mem = Arc::clone(&state.mem);
            let batch = &group.batch;
            let sync = group.sync;
            let guard_picker = &self.guard_picker;
            let io_result =
                MutexGuard::unlocked(&mut state, || -> Result<Vec<(usize, Vec<u8>)>> {
                    if let Some(log) = log.as_mut() {
                        log.add_record(batch.contents())?;
                        if sync {
                            log.sync()?;
                        }
                    }
                    // Guard selection: every inserted key is hashed; selected
                    // keys become uncommitted guards for their level and all
                    // deeper ones.
                    let mut new_guards = Vec::new();
                    for record in batch.iter() {
                        let record = record?;
                        if record.value_type == ValueType::Value {
                            if let Some(level) = guard_picker.guard_level(record.key) {
                                new_guards.push((level, record.key.to_vec()));
                            }
                        }
                        mem.add(record.sequence, record.value_type, record.key, record.value);
                    }
                    Ok(new_guards)
                });
            state.log = log;
            match io_result {
                Ok(new_guards) => {
                    for (level, key) in new_guards {
                        state.uncommitted_guards.add(level, &key);
                    }
                    state.versions.last_sequence = seq + count - 1;
                }
                Err(err) => {
                    // A failed WAL append/sync may have lost acknowledged
                    // bytes; poison the store like LevelDB does.
                    if state.bg_error.is_none() {
                        state.bg_error = Some(err.clone());
                    }
                    result = Err(err);
                }
            }
        }
        drop(state);
        self.commit_queue.complete(group, &result);
        result
    }

    fn make_room_for_write(&self, state: &mut MutexGuard<'_, DbState>, force: bool) -> Result<()> {
        let mut allow_delay = !force;
        let mut force = force;
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let level0_files = state.versions.current_unpinned().level0.len();
            if allow_delay && level0_files >= self.options.level0_slowdown_writes_trigger {
                allow_delay = false;
                let stall = Instant::now();
                self.work_available.notify_all();
                MutexGuard::unlocked(state, || std::thread::sleep(Duration::from_millis(1)));
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if !force && state.mem.approximate_memory_usage() <= self.options.write_buffer_size {
                return Ok(());
            }
            if state.imm.is_some() {
                let stall = Instant::now();
                self.flush_available.notify_one();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if level0_files >= self.options.level0_stop_writes_trigger {
                let stall = Instant::now();
                self.work_available.notify_all();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }

            // Switch to a fresh memtable and WAL. The full memtable is
            // frozen whole — cursors still pinning it keep reading it in
            // `imm` (and beyond, through their own `Arc`s) with no copy.
            let new_log_number = state.versions.new_file_number();
            let log_file = self
                .env
                .new_writable_file(&log_file_name(&self.db_path, new_log_number))?;
            let close_result = match state.log.take() {
                Some(old_log) => old_log.close(),
                None => Ok(()),
            };
            state.log = Some(LogWriter::new(log_file));
            state.log_file_number = new_log_number;
            if let Err(err) = close_result {
                // A failed close may have lost a sync on acknowledged
                // records in the old log; surface it instead of dropping it.
                if state.bg_error.is_none() {
                    state.bg_error = Some(err.clone());
                }
                return Err(err);
            }
            let full_mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
            state.imm = Some(full_mem);
            force = false;
            self.flush_available.notify_one();
        }
    }

    // ----------------------------------------------------------------- read

    fn get(&self, opts: &ReadOptions, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let (lookup, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence);
            let lookup = LookupKey::new(user_key, sequence);
            match state.mem.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
            (lookup, state.imm.clone(), state.versions.current())
        };
        if let Some(imm) = imm {
            match imm.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
        }
        version.get(opts, &lookup, &self.table_cache)
    }

    /// Builds the streaming user-key cursor over the whole FLSM.
    ///
    /// Level 0 contributes one iterator per file; each deeper level
    /// contributes a single lazy [`GuardLevelIterator`](crate::iter::GuardLevelIterator)
    /// that merges the sstables of whichever guard the cursor is in,
    /// positioning the deepest non-empty level's guard with a thread pool on
    /// `seek` — the paper's "parallel seeks" optimisation. Creating a cursor
    /// counts as a seek for the consecutive-seek compaction trigger.
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.counters.record_seek();
        self.note_seek();
        let (sequence, mem, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence);
            (
                sequence,
                Arc::clone(&state.mem),
                state.imm.clone(),
                state.versions.current(),
            )
        };

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        children.push(Box::new(mem.owned_iter()));
        if let Some(imm) = imm {
            children.push(Box::new(imm.owned_iter()));
        }

        for file in &version.level0 {
            children.push(Box::new(self.table_cache.iter(
                opts,
                file.number,
                file.file_size,
            )?));
        }

        // Parallel guard seeks pay on the deepest non-empty level, whose
        // sstables are the least likely to be cached.
        let deepest_nonempty = version
            .levels
            .iter()
            .enumerate()
            .skip(1)
            .rev()
            .find(|(_, l)| l.num_files() > 0)
            .map(|(idx, _)| idx);
        for (level_idx, level) in version.levels.iter().enumerate().skip(1) {
            if level.num_files() == 0 {
                continue;
            }
            let parallel_threads =
                if self.options.enable_parallel_seeks && Some(level_idx) == deepest_nonempty {
                    self.options.parallel_seek_threads
                } else {
                    1
                };
            children.push(Box::new(
                crate::iter::GuardLevelIterator::new(
                    Arc::clone(&self.table_cache),
                    opts.clone(),
                    level.guards.clone(),
                )
                .with_parallel_seeks(parallel_threads),
            ));
        }

        let merged = MergingIterator::new(children);
        let user = UserIterator::new(Box::new(merged), sequence);
        // Pin the version so obsolete-file GC cannot delete the sstables the
        // cursor is still reading.
        Ok(Box::new(PinnedIterator::new(Box::new(user), version)))
    }

    /// Counts a seek and requests a seek-triggered compaction if the
    /// threshold of consecutive seeks is reached.
    fn note_seek(&self) {
        if !self.options.enable_seek_compaction {
            return;
        }
        let seeks = self.consecutive_seeks.fetch_add(1, Ordering::Relaxed) + 1;
        if seeks >= self.options.seek_compaction_threshold {
            self.consecutive_seeks.store(0, Ordering::Relaxed);
            let mut state = self.state.lock();
            state.seek_compaction_pending = true;
            self.work_available.notify_one();
        }
    }

    // ----------------------------------------------------- background work

    /// The dedicated flush thread: turns `imm` into a level-0 sstable the
    /// moment one exists, independently of how busy the compaction pool is.
    fn flush_main(inner: Arc<DbInner>) {
        let mut state = inner.state.lock();
        loop {
            while !inner.shutting_down.load(Ordering::SeqCst)
                && (state.imm.is_none() || state.bg_error.is_some())
            {
                inner.flush_available.wait(&mut state);
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            state.flush_running = true;
            let result = inner.compact_memtable(&mut state);
            state.flush_running = false;
            if let Err(err) = result {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
            // Writers stalled on the full memtable can proceed, and the new
            // level-0 file may have armed a compaction trigger.
            inner.work_done.notify_all();
            inner.work_available.notify_all();
        }
    }

    /// One worker of the compaction pool: claim a job whose inputs are
    /// disjoint from every in-flight job, run its IO outside the state
    /// mutex, and commit the result through the serialized `log_and_apply`.
    fn compaction_worker_main(inner: Arc<DbInner>) {
        let mut state = inner.state.lock();
        loop {
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if let Some(job) = inner.claim_compaction_job(&mut state) {
                inner.run_claimed_job(&mut state, job);
                inner.work_done.notify_all();
                // The commit may have armed triggers for other levels (or
                // freed claimed guards), so give idle workers a chance.
                inner.work_available.notify_all();
            } else {
                inner.work_available.wait(&mut state);
            }
        }
    }

    /// Claims the highest-priority compaction job whose inputs do not
    /// intersect any in-flight job's inputs.
    ///
    /// On success the job's input files are recorded in `claimed_inputs`
    /// (keeping other workers off the same guards) and its pre-allocated
    /// output numbers in `pending_outputs` (keeping the GC off files that
    /// exist on disk but are not yet committed to any version).
    ///
    /// `seek_compaction_pending` is cleared only when a seek-triggered job
    /// is actually scheduled (or provably never will be): a size-triggered
    /// job claiming the same wakeup must not swallow the request.
    fn claim_compaction_job(
        &self,
        state: &mut MutexGuard<'_, DbState>,
    ) -> Option<FlsmCompactionJob> {
        if state.bg_error.is_some() {
            return None;
        }
        let split = self.options.compaction_threads.max(1);
        let smallest_snapshot = self
            .snapshots
            .compaction_floor(state.versions.last_sequence);
        let version = state.versions.current();

        let mut candidates = state.versions.compaction_candidates();
        if state.seek_compaction_pending {
            match self.pick_seek_compaction_level(state) {
                // Seek compactions yield to size triggers; the flag stays
                // set until the seek job itself is claimed.
                Some(level) => candidates.push((level, CompactionReason::SeekTriggered)),
                // No guard holds two sstables anywhere: the request can
                // never be satisfied, so drop it instead of spinning.
                None => state.seek_compaction_pending = false,
            }
        }

        for (level, reason) in candidates {
            let output_level = if level + 1 < self.options.max_levels {
                level + 1
            } else {
                level
            };
            let pending_guards: Vec<Vec<u8>> = state
                .uncommitted_guards
                .for_level(output_level)
                .iter()
                .cloned()
                .collect();
            let job = {
                // Split the borrow: number allocation mutates the version
                // set while the claim set is read.
                let st = &mut **state;
                let versions = &mut st.versions;
                build_compaction_job(
                    &version,
                    &self.options,
                    level,
                    reason,
                    pending_guards,
                    smallest_snapshot,
                    &st.claimed_inputs,
                    split,
                    || versions.new_file_number(),
                )
            };
            if let Some(job) = job {
                if job.reason == CompactionReason::SeekTriggered {
                    state.seek_compaction_pending = false;
                }
                for file in &job.inputs {
                    state.claimed_inputs.insert(file.number);
                }
                state
                    .pending_outputs
                    .extend(job.output_numbers.iter().copied());
                state.active_compactions += 1;
                self.counters.record_compaction_start();
                return Some(job);
            }
        }
        None
    }

    /// Runs a claimed job's IO with the state mutex released, then commits
    /// (or abandons) it and releases its claims.
    fn run_claimed_job(&self, state: &mut MutexGuard<'_, DbState>, job: FlsmCompactionJob) {
        let start = Instant::now();
        let env = Arc::clone(&self.env);
        let db_path = self.db_path.clone();
        let options = self.options.clone();
        let table_cache = Arc::clone(&self.table_cache);
        let io_result = MutexGuard::unlocked(state, || {
            run_compaction_io(env.as_ref(), &db_path, &options, &table_cache, &job)
        });

        let commit_result = io_result.and_then(|outputs| {
            let mut edit = FlsmVersionEdit::default();
            for file in &job.inputs {
                edit.delete_file(job.level, file.number);
            }
            let mut bytes_written = 0;
            for meta in &outputs {
                bytes_written += meta.file_size;
                edit.add_file(job.output_level, meta);
            }
            for key in &job.guards_to_commit {
                edit.new_guards.push((job.output_level, key.clone()));
            }
            state.versions.log_and_apply(edit)?;
            // Only the keys this job actually committed leave the pending
            // set; guards picked by writers during the IO stay pending for
            // the next compaction into the level.
            state
                .uncommitted_guards
                .remove_committed(job.output_level, &job.guards_to_commit);
            self.counters.record_compaction(
                start.elapsed().as_micros() as u64,
                job.input_bytes,
                bytes_written,
            );
            Ok(())
        });

        // Release the claims whether the job committed or failed, so a
        // poisoned store does not wedge its sibling workers.
        for file in &job.inputs {
            state.claimed_inputs.remove(&file.number);
        }
        for number in &job.output_numbers {
            state.pending_outputs.remove(number);
        }
        state.active_compactions -= 1;
        self.counters.record_compaction_end();

        match commit_result {
            Ok(()) => self.remove_obsolete_files(state),
            Err(err) => {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
        }
    }

    /// Picks the level whose guards hold the most overlapping sstables for a
    /// seek-triggered compaction, if any guard has at least two.
    fn pick_seek_compaction_level(&self, state: &MutexGuard<'_, DbState>) -> Option<usize> {
        let version = state.versions.current_unpinned();
        let mut best: Option<(usize, usize)> = None;
        if version.level0.len() >= 2 {
            best = Some((0, version.level0.len()));
        }
        for (level_idx, level) in version.levels.iter().enumerate().skip(1) {
            let fanout = level.max_files_in_guard();
            if fanout >= 2 && best.map(|(_, b)| fanout > b).unwrap_or(true) {
                best = Some((level_idx, fanout));
            }
        }
        best.map(|(level, _)| level)
    }

    fn compact_memtable(&self, state: &mut MutexGuard<'_, DbState>) -> Result<()> {
        let imm = match state.imm.clone() {
            Some(imm) => imm,
            None => return Ok(()),
        };
        let number = state.versions.new_file_number();
        // Until the edit commits, the new table exists only on disk; keep
        // the concurrent compaction workers' GC away from it.
        state.pending_outputs.insert(number);
        let start = Instant::now();
        let env = Arc::clone(&self.env);
        let db_path = self.db_path.clone();
        let options = self.options.clone();
        let meta = MutexGuard::unlocked(state, || {
            build_table_from_memtable(env.as_ref(), &db_path, &options, &imm, number)
        });
        let meta = match meta {
            Ok(meta) => meta,
            Err(err) => {
                state.pending_outputs.remove(&number);
                return Err(err);
            }
        };

        let mut edit = FlsmVersionEdit {
            log_number: Some(state.log_file_number),
            ..Default::default()
        };
        let mut written = 0;
        if let Some(meta) = &meta {
            written = meta.file_size;
            edit.add_file(0, meta);
        }
        let commit = state.versions.log_and_apply(edit);
        state.pending_outputs.remove(&number);
        commit?;
        state.imm = None;
        self.counters.record_flush();
        self.counters
            .record_compaction(start.elapsed().as_micros() as u64, 0, written);
        self.remove_obsolete_files(state);
        Ok(())
    }

    // -------------------------------------------------------------- cleanup

    fn remove_obsolete_files(&self, state: &mut MutexGuard<'_, DbState>) {
        // If a pinned old version kept files alive in this pass, a later
        // quiesced `flush` must rescan once the pins drop.
        let (live, pinned) = state.versions.live_files_and_pins();
        state.gc_rescan_needed = pinned;
        let log_number = state.versions.log_number;
        let manifest_number = state.versions.manifest_number();
        let children = match self.env.children(&self.db_path) {
            Ok(children) => children,
            Err(_) => return,
        };
        for name in children {
            let Some((ty, number)) = parse_file_name(&name) else {
                continue;
            };
            let keep = match ty {
                // A table is live if any version references it — or if it is
                // the not-yet-committed output of an in-flight flush or
                // compaction job running on another thread.
                FileType::Table => {
                    live.binary_search(&number).is_ok() || state.pending_outputs.contains(&number)
                }
                FileType::WriteAheadLog => number >= log_number || number == state.log_file_number,
                FileType::Descriptor => number >= manifest_number,
                FileType::Temp => false,
                FileType::Current | FileType::Lock | FileType::BtreePages => true,
            };
            if !keep {
                if ty == FileType::Table {
                    self.table_cache.evict(number);
                }
                let _ = self.env.remove_file(&self.db_path.join(&name));
            }
        }
    }

    // ---------------------------------------------------------------- flush

    fn flush(&self) -> Result<()> {
        // Rotate the active memtable through the commit queue so the
        // rotation is serialised with in-flight write groups.
        let needs_rotate = !self.state.lock().mem.is_empty();
        if needs_rotate {
            let ticket = self.commit_queue.submit(None, false);
            match self.commit_queue.wait_turn(&ticket) {
                Role::Done(result) => result?,
                Role::Leader(group) => self.commit(group)?,
            }
        }
        let mut state = self.state.lock();
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            if state.imm.is_some()
                || state.flush_running
                || state.active_compactions > 0
                || state.versions.needs_compaction()
            {
                self.flush_available.notify_one();
                self.work_available.notify_all();
                self.work_done.wait(&mut state);
            } else {
                // Quiesced: reclaim files whose deletion a commit-time GC
                // skipped because a read still pinned their version. Skipped
                // when the last GC saw no pins — it already ran to
                // completion, so rescanning the directory would be wasted
                // work under the state lock.
                if state.gc_rescan_needed {
                    self.remove_obsolete_files(&mut state);
                }
                return Ok(());
            }
        }
    }

    fn stats(&self) -> StoreStats {
        let io = self.env.io_stats().snapshot();
        let state = self.state.lock();
        let version = state.versions.current_unpinned();
        let memory = state.mem.approximate_memory_usage()
            + state
                .imm
                .as_ref()
                .map(|m| m.approximate_memory_usage())
                .unwrap_or(0)
            + self.table_cache.memory_usage();
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live: version.total_bytes(),
            num_files: version.num_files() as u64,
            compactions: EngineCounters::load(&self.counters.compactions),
            flushes: EngineCounters::load(&self.counters.flushes),
            max_concurrent_compactions: EngineCounters::load(
                &self.counters.max_concurrent_compactions,
            ),
            compaction_micros: EngineCounters::load(&self.counters.compaction_micros),
            compaction_bytes_read: EngineCounters::load(&self.counters.compaction_bytes_read),
            compaction_bytes_written: EngineCounters::load(&self.counters.compaction_bytes_written),
            memory_usage_bytes: memory as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: EngineCounters::load(&self.counters.write_stalls),
            write_stall_micros: EngineCounters::load(&self.counters.write_stall_micros),
            memtable_clones: EngineCounters::load(&self.counters.memtable_clones),
        }
    }
}

impl KvStore for PebblesDb {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.inner.write(batch, opts)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.inner.write(batch, opts)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.inner.write(batch, opts)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.inner.iter(opts)
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.inner.state.lock();
        self.inner.snapshots.acquire(state.versions.last_sequence)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn engine_name(&self) -> String {
        self.inner.engine_label.clone()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().file_sizes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::encode_internal_key;
    use pebblesdb_env::MemEnv;
    use pebblesdb_lsm::version::FileMetaDataEdit;

    fn file_edit(number: u64, smallest: &str, largest: &str) -> FileMetaDataEdit {
        FileMetaDataEdit {
            number,
            file_size: 1000,
            smallest: encode_internal_key(smallest.as_bytes(), 9, ValueType::Value),
            largest: encode_internal_key(largest.as_bytes(), 1, ValueType::Value),
        }
    }

    /// Fabricates `files` into the locked store's version so claim logic
    /// can be exercised without running real IO. The caller must hold the
    /// state lock across this call *and* its subsequent claim assertions:
    /// the store's own workers claim eagerly on wakeup, and releasing the
    /// lock between fabrication and the test's claim would let a worker
    /// race it to the job.
    fn fabricate_files(state: &mut MutexGuard<'_, DbState>, files: &[(usize, &str, &str)]) {
        let mut edit = FlsmVersionEdit::default();
        for (level, smallest, largest) in files {
            let number = state.versions.new_file_number();
            edit.new_files
                .push((*level, file_edit(number, smallest, largest)));
        }
        state.versions.log_and_apply(edit).unwrap();
    }

    fn open_empty(options: StoreOptions) -> PebblesDb {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        PebblesDb::open_with_options(env, Path::new("/claim-test"), options).unwrap()
    }

    /// Regression test: a size-triggered compaction that preempts a pending
    /// seek request must not clear `seek_compaction_pending` — the flag only
    /// falls when the seek-triggered job itself is scheduled.
    #[test]
    fn seek_flag_survives_a_preempting_size_compaction() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 2;
        let db = open_empty(options);
        let inner = Arc::clone(&db.inner);
        let mut state = inner.state.lock();
        // Two level-0 files arm the size trigger.
        fabricate_files(&mut state, &[(0, "a", "c"), (0, "b", "d")]);
        state.seek_compaction_pending = true;

        let job = inner
            .claim_compaction_job(&mut state)
            .expect("the level-0 size trigger yields a job");
        assert_eq!(job.reason, CompactionReason::Level0Files);
        assert!(
            state.seek_compaction_pending,
            "seek request was swallowed by the preempting size-triggered job"
        );
        drop(state);
    }

    /// The flag falls exactly when a seek-triggered job is claimed.
    #[test]
    fn seek_flag_clears_when_the_seek_job_is_scheduled() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100; // no size triggers
        options.enable_aggressive_compaction = false;
        let db = open_empty(options);
        let inner = Arc::clone(&db.inner);
        let mut state = inner.state.lock();
        // A level-1 guard with two overlapping sstables: under every size
        // budget, but exactly what a seek-triggered compaction wants.
        fabricate_files(&mut state, &[(1, "a", "c"), (1, "b", "d")]);
        state.seek_compaction_pending = true;

        let job = inner
            .claim_compaction_job(&mut state)
            .expect("the seek request yields a job");
        assert_eq!(job.reason, CompactionReason::SeekTriggered);
        assert!(!state.seek_compaction_pending);
        drop(state);
    }

    /// An unsatisfiable seek request (no guard holds two sstables) is
    /// dropped instead of waking workers forever.
    #[test]
    fn unsatisfiable_seek_flag_is_dropped() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100;
        options.enable_aggressive_compaction = false;
        let db = open_empty(options);
        let inner = Arc::clone(&db.inner);
        let mut state = inner.state.lock();
        fabricate_files(&mut state, &[(1, "a", "c")]);
        state.seek_compaction_pending = true;

        assert!(inner.claim_compaction_job(&mut state).is_none());
        assert!(!state.seek_compaction_pending);
        drop(state);
    }

    /// Claims at the same level are disjoint, and the counters see the
    /// overlap.
    #[test]
    fn two_workers_claim_disjoint_guard_subsets() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100;
        options.enable_aggressive_compaction = false;
        options.max_sstables_per_guard = 1;
        options.compaction_threads = 2;
        let db = open_empty(options);
        let inner = Arc::clone(&db.inner);
        let mut state = inner.state.lock();
        // Two over-budget "guards": the sentinel guard of level 1 would hold
        // all four files, so use disjoint key ranges at levels 1 and 2 to
        // model independent work.
        fabricate_files(
            &mut state,
            &[(1, "a", "b"), (1, "c", "d"), (2, "p", "q"), (2, "r", "s")],
        );

        let job1 = inner.claim_compaction_job(&mut state).expect("first claim");
        let job2 = inner
            .claim_compaction_job(&mut state)
            .expect("second claim");
        let set1: BTreeSet<u64> = job1.inputs.iter().map(|f| f.number).collect();
        let set2: BTreeSet<u64> = job2.inputs.iter().map(|f| f.number).collect();
        assert!(set1.is_disjoint(&set2));
        assert_eq!(state.active_compactions, 2);
        assert_eq!(
            EngineCounters::load(&inner.counters.max_concurrent_compactions),
            2
        );
        // Outputs of both uncommitted jobs are protected from the GC.
        for number in job1.output_numbers.iter().chain(&job2.output_numbers) {
            assert!(state.pending_outputs.contains(number));
        }
        drop(state);
    }
}
