//! PebblesDB: the FLSM-based key-value store, as a [`ShapePolicy`].
//!
//! The write path (WAL + memtable + level-0 flush), recovery, flush thread,
//! compaction worker pool and garbage collection all live in the shared
//! engine chassis ([`pebblesdb_engine`]) — they match the HyperLevelDB-style
//! baseline because PebblesDB was built by modifying HyperLevelDB (section
//! 4.4 of the paper). Everything below level 0 is what this file supplies:
//! levels are organised by guards, compaction fragments data into child
//! guards instead of rewriting the next level, and reads use sstable-level
//! bloom filters, parallel seeks and seek-triggered compaction to claw back
//! the read performance the FLSM structure gives up.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::LookupKey;
use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::vlog::LookupValue;
use pebblesdb_common::{
    CfStats, ColumnFamilyHandle, Db, KvStore, ReadOptions, Result, StoreOptions, StorePreset,
    StoreStats, WriteBatch, WriteOptions,
};
use pebblesdb_engine::{EngineDb, EngineIo, FileMetaData, JobClaim, PolicyCtx, ShapePolicy};
use pebblesdb_env::Env;

use crate::compaction::{build_compaction_job, run_compaction_io, FlsmCompactionJob};
use crate::guards::{GuardPicker, UncommittedGuards};
use crate::version::{CompactionReason, FlsmVersion, FlsmVersionEdit, FlsmVersionSet};

/// The guarded FLSM shape policy.
pub struct FlsmPolicy {
    options: StoreOptions,
    guard_picker: GuardPicker,
    /// Consecutive seeks since the last write (seek-triggered compaction).
    consecutive_seeks: AtomicUsize,
    label: &'static str,
}

/// Mutable policy state kept under the chassis state mutex.
pub struct FlsmPolicyState {
    /// Guards chosen by writers but not yet committed by a compaction.
    pub uncommitted_guards: UncommittedGuards,
    /// A seek-triggered compaction request is pending.
    pub seek_compaction_pending: bool,
}

impl FlsmPolicy {
    /// Builds the FLSM shape from `options`. Public so chassis-generic
    /// plumbing (sharding, the replication follower) can open an
    /// FLSM-shaped [`EngineDb`] directly.
    pub fn new(options: &StoreOptions) -> FlsmPolicy {
        let label = if options.max_sstables_per_guard == 1 {
            StorePreset::PebblesDb1.name()
        } else {
            StorePreset::PebblesDb.name()
        };
        FlsmPolicy {
            guard_picker: GuardPicker::new(options),
            options: options.clone(),
            consecutive_seeks: AtomicUsize::new(0),
            label,
        }
    }

    /// Picks the level whose guards hold the most overlapping sstables for a
    /// seek-triggered compaction, if any guard has at least two.
    fn pick_seek_compaction_level(version: &FlsmVersion) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        if version.level0.len() >= 2 {
            best = Some((0, version.level0.len()));
        }
        for (level_idx, level) in version.levels.iter().enumerate().skip(1) {
            let fanout = level.max_files_in_guard();
            if fanout >= 2 && best.map(|(_, b)| fanout > b).unwrap_or(true) {
                best = Some((level_idx, fanout));
            }
        }
        best.map(|(level, _)| level)
    }
}

impl ShapePolicy for FlsmPolicy {
    type Versions = FlsmVersionSet;
    type State = FlsmPolicyState;
    type Job = FlsmCompactionJob;

    fn engine_name(&self) -> String {
        self.label.to_string()
    }

    fn new_versions(&self, io: &EngineIo) -> FlsmVersionSet {
        FlsmVersionSet::new(Arc::clone(&io.env), io.db_path.clone(), io.options.clone())
    }

    fn new_state(&self) -> FlsmPolicyState {
        FlsmPolicyState {
            uncommitted_guards: UncommittedGuards::new(self.options.max_levels),
            seek_compaction_pending: false,
        }
    }

    // ------------------------------------------------------------ write path

    /// Writes reset the consecutive-seek counter (section 4.2: seek-based
    /// compaction targets read-only phases).
    fn note_write(&self) {
        self.consecutive_seeks.store(0, Ordering::Relaxed);
    }

    /// Guard selection: a pure hash of the key, safe to run in the unlocked
    /// group-commit apply. Selected keys become uncommitted guards for their
    /// level and all deeper ones once absorbed under the lock.
    fn observe_key(&self, key: &[u8]) -> Option<(usize, Vec<u8>)> {
        self.guard_picker
            .guard_level(key)
            .map(|level| (level, key.to_vec()))
    }

    fn absorb_observations(&self, state: &mut FlsmPolicyState, observed: Vec<(usize, Vec<u8>)>) {
        for (level, key) in observed {
            state.uncommitted_guards.add(level, &key);
        }
    }

    // ------------------------------------------------------------- read path

    fn get_in_version(
        &self,
        io: &EngineIo,
        version: &FlsmVersion,
        opts: &ReadOptions,
        key: &LookupKey,
    ) -> Result<Option<LookupValue>> {
        version.get(opts, key, &io.table_cache)
    }

    /// Level 0 contributes one iterator per file; each deeper level
    /// contributes a single lazy [`GuardLevelIterator`](crate::iter::GuardLevelIterator)
    /// that merges the sstables of whichever guard the cursor is in,
    /// positioning the deepest non-empty level's guard with a thread pool on
    /// `seek` — the paper's "parallel seeks" optimisation.
    fn append_version_iterators(
        &self,
        io: &EngineIo,
        version: &FlsmVersion,
        opts: &ReadOptions,
        children: &mut Vec<Box<dyn DbIterator>>,
    ) -> Result<()> {
        for file in &version.level0 {
            children.push(Box::new(io.table_cache.iter(
                opts,
                file.number,
                file.file_size,
            )?));
        }

        // Parallel guard seeks pay on the deepest non-empty level, whose
        // sstables are the least likely to be cached.
        let deepest_nonempty = version
            .levels
            .iter()
            .enumerate()
            .skip(1)
            .rev()
            .find(|(_, l)| l.num_files() > 0)
            .map(|(idx, _)| idx);
        for (level_idx, level) in version.levels.iter().enumerate().skip(1) {
            if level.num_files() == 0 {
                continue;
            }
            let parallel_threads =
                if self.options.enable_parallel_seeks && Some(level_idx) == deepest_nonempty {
                    self.options.parallel_seek_threads
                } else {
                    1
                };
            children.push(Box::new(
                crate::iter::GuardLevelIterator::new(
                    Arc::clone(&io.table_cache),
                    opts.clone(),
                    level.guards.clone(),
                )
                .with_parallel_seeks(parallel_threads),
            ));
        }
        Ok(())
    }

    /// Counts a seek; the threshold of consecutive seeks arms a
    /// seek-triggered compaction via `arm_requested_compaction`.
    fn note_seek(&self) -> bool {
        if !self.options.enable_seek_compaction {
            return false;
        }
        let seeks = self.consecutive_seeks.fetch_add(1, Ordering::Relaxed) + 1;
        if seeks >= self.options.seek_compaction_threshold {
            self.consecutive_seeks.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn arm_requested_compaction(&self, state: &mut FlsmPolicyState) {
        state.seek_compaction_pending = true;
    }

    // ------------------------------------------------------------ compaction

    /// Claims the highest-priority job whose inputs do not intersect any
    /// in-flight job's inputs: a disjoint guard-component subset of a level.
    ///
    /// `seek_compaction_pending` is cleared only when a seek-triggered job
    /// is actually scheduled (or provably never will be): a size-triggered
    /// job claiming the same wakeup must not swallow the request.
    fn pick_job(
        &self,
        _io: &EngineIo,
        ctx: &mut PolicyCtx<'_, Self>,
    ) -> Option<JobClaim<FlsmCompactionJob>> {
        let split = self.options.compaction_threads.max(1);
        let version = ctx.versions.current();

        let mut candidates = ctx.versions.compaction_candidates();
        if ctx.state.seek_compaction_pending {
            match Self::pick_seek_compaction_level(ctx.versions.current_unpinned()) {
                // Seek compactions yield to size triggers; the flag stays
                // set until the seek job itself is claimed.
                Some(level) => candidates.push((level, CompactionReason::SeekTriggered)),
                // No guard holds two sstables anywhere: the request can
                // never be satisfied, so drop it instead of spinning.
                None => ctx.state.seek_compaction_pending = false,
            }
        }

        for (level, reason) in candidates {
            let output_level = if level + 1 < self.options.max_levels {
                level + 1
            } else {
                level
            };
            let pending_guards: Vec<Vec<u8>> = ctx
                .state
                .uncommitted_guards
                .for_level(output_level)
                .iter()
                .cloned()
                .collect();
            let job = {
                let versions = &mut *ctx.versions;
                build_compaction_job(
                    &version,
                    &self.options,
                    level,
                    reason,
                    pending_guards,
                    ctx.smallest_snapshot,
                    ctx.claimed_inputs,
                    split,
                    || versions.new_file_number(),
                )
            };
            if let Some(job) = job {
                if job.reason == CompactionReason::SeekTriggered {
                    ctx.state.seek_compaction_pending = false;
                }
                return Some(JobClaim {
                    input_numbers: job.inputs.iter().map(|f| f.number).collect(),
                    output_numbers: job.output_numbers.clone(),
                    job,
                });
            }
        }
        None
    }

    fn run_job_io(&self, io: &EngineIo, job: &FlsmCompactionJob) -> Result<Vec<FileMetaData>> {
        run_compaction_io(
            io.env.as_ref(),
            &io.db_path,
            &io.options,
            &io.table_cache,
            job,
        )
    }

    fn commit_job(
        &self,
        ctx: &mut PolicyCtx<'_, Self>,
        job: &FlsmCompactionJob,
        outputs: Vec<FileMetaData>,
    ) -> Result<(u64, u64)> {
        let mut edit = FlsmVersionEdit::default();
        for file in &job.inputs {
            edit.delete_file(job.level, file.number);
        }
        let mut bytes_written = 0;
        for meta in &outputs {
            bytes_written += meta.file_size;
            edit.add_file(job.output_level, meta);
        }
        for key in &job.guards_to_commit {
            edit.new_guards.push((job.output_level, key.clone()));
        }
        ctx.versions.log_and_apply(edit)?;
        // Only the keys this job actually committed leave the pending set;
        // guards picked by writers during the IO stay pending for the next
        // compaction into the level.
        ctx.state
            .uncommitted_guards
            .remove_committed(job.output_level, &job.guards_to_commit);
        Ok((job.input_bytes, bytes_written))
    }
}

/// A handle to an open PebblesDB database.
///
/// Everything but the guarded-FLSM policy runs in the shared engine chassis
/// ([`EngineDb`]); the LSM baseline shares the same machinery with a
/// one-implicit-guard-per-level policy.
pub struct PebblesDb {
    db: EngineDb<FlsmPolicy>,
}

impl PebblesDb {
    /// Opens (creating if necessary) a PebblesDB database at `path`.
    pub fn open(env: Arc<dyn Env>, path: &Path) -> Result<PebblesDb> {
        Self::open_with_options(env, path, StoreOptions::with_preset(StorePreset::PebblesDb))
    }

    /// Opens a database with explicit options.
    pub fn open_with_options(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
    ) -> Result<PebblesDb> {
        let policy = FlsmPolicy::new(&options);
        Ok(PebblesDb {
            db: EngineDb::open(policy, env, path, options)?,
        })
    }

    /// Opens (creating if necessary) a sharded store of FLSM engines at
    /// `path`: `config.shards` independent [`PebblesDb`]-shaped instances in
    /// `shard-<i>/` subdirectories behind one [`Db`] facade. See
    /// [`pebblesdb_shard`] for the routing and commit protocol.
    pub fn open_sharded(
        env: Arc<dyn Env>,
        path: &Path,
        options: StoreOptions,
        config: pebblesdb_shard::ShardConfig,
    ) -> Result<pebblesdb_shard::ShardedDb<FlsmPolicy>> {
        pebblesdb_shard::ShardedDb::open_with(FlsmPolicy::new, env, path, options, config)
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &StoreOptions {
        self.db.options()
    }

    /// Per-level summary string (files and guards per level).
    pub fn level_summary(&self) -> String {
        self.db.with_current_version(|v| v.level_summary())
    }

    /// Number of guards (including the sentinel) at each level.
    pub fn guards_per_level(&self) -> Vec<usize> {
        self.db.with_current_version(|v| v.guards_per_level())
    }

    /// Number of files at each level.
    pub fn files_per_level(&self) -> Vec<usize> {
        self.db
            .with_current_version(|v| (0..v.num_levels()).map(|l| v.level_files(l)).collect())
    }

    /// Total number of guards that currently hold no sstables.
    pub fn empty_guards(&self) -> usize {
        self.db.with_current_version(|v| v.empty_guards())
    }

    /// Flushes the memtable and waits until no compaction work is pending.
    pub fn compact_all(&self) -> Result<()> {
        KvStore::flush(self)
    }

    /// Runs one value-log garbage-collection pass: relocates live values out
    /// of the coldest sealed vlog file of each family and deletes retired
    /// files no pinned snapshot can still reach.
    pub fn vlog_gc(&self) -> Result<pebblesdb_engine::VlogGcReport> {
        self.db.vlog_gc()
    }

    /// The underlying chassis store. Replication plumbing (the follower
    /// store, change-stream shipping) is generic over the tree shape and
    /// works against the chassis directly.
    pub fn engine(&self) -> &EngineDb<FlsmPolicy> {
        &self.db
    }
}

/// Column families on PebblesDB: implemented once in the chassis; the FLSM
/// policy provides each family its own guard tree.
impl Db for PebblesDb {
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle> {
        self.db.create_cf(name)
    }
    fn drop_cf(&self, name: &str) -> Result<()> {
        self.db.drop_cf(name)
    }
    fn list_cfs(&self) -> Vec<String> {
        self.db.list_cfs()
    }
    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        self.db.cf(name)
    }
    fn cf_stats(&self) -> Vec<CfStats> {
        self.db.cf_stats()
    }
    fn stream(
        &self,
        from_seq: pebblesdb_common::SequenceNumber,
    ) -> Result<Box<dyn pebblesdb_common::ChangeStream>> {
        Db::stream(&self.db, from_seq)
    }
    fn committed_sequence(&self) -> pebblesdb_common::SequenceNumber {
        Db::committed_sequence(&self.db)
    }
}

impl KvStore for PebblesDb {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.db.put_opts(opts, key, value)
    }
    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get_opts(opts, key)
    }
    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.db.delete_opts(opts, key)
    }
    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.db.write_opts(opts, batch)
    }
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.db.iter(opts)
    }
    fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }
    fn flush(&self) -> Result<()> {
        self.db.flush()
    }
    fn stats(&self) -> StoreStats {
        self.db.stats()
    }
    fn engine_name(&self) -> String {
        self.db.engine_name()
    }
    fn live_file_sizes(&self) -> Vec<u64> {
        self.db.live_file_sizes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::{encode_internal_key, ValueType};
    use pebblesdb_engine::{EngineCore, FileMetaDataEdit};
    use pebblesdb_env::MemEnv;
    use std::collections::BTreeSet;

    fn file_edit(number: u64, smallest: &str, largest: &str) -> FileMetaDataEdit {
        FileMetaDataEdit {
            number,
            file_size: 1000,
            smallest: encode_internal_key(smallest.as_bytes(), 9, ValueType::Value),
            largest: encode_internal_key(largest.as_bytes(), 1, ValueType::Value),
        }
    }

    type FlsmState<'a> = parking_lot::MutexGuard<'a, pebblesdb_engine::EngineState<FlsmPolicy>>;

    /// Fabricates `files` into the locked store's version so claim logic
    /// can be exercised without running real IO. The caller must hold the
    /// state lock across this call *and* its subsequent claim assertions:
    /// the store's own workers claim eagerly on wakeup, and releasing the
    /// lock between fabrication and the test's claim would let a worker
    /// race it to the job.
    fn fabricate_files(state: &mut FlsmState<'_>, files: &[(usize, &str, &str)]) {
        let cf = state.default_cf_mut();
        let mut edit = FlsmVersionEdit::default();
        for (level, smallest, largest) in files {
            let number = cf.versions.new_file_number();
            edit.new_files
                .push((*level, file_edit(number, smallest, largest)));
        }
        cf.versions.log_and_apply(edit).unwrap();
    }

    fn open_empty(options: StoreOptions) -> PebblesDb {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        PebblesDb::open_with_options(env, Path::new("/claim-test"), options).unwrap()
    }

    /// Regression test: a size-triggered compaction that preempts a pending
    /// seek request must not clear `seek_compaction_pending` — the flag only
    /// falls when the seek-triggered job itself is scheduled.
    #[test]
    fn seek_flag_survives_a_preempting_size_compaction() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 2;
        let db = open_empty(options);
        let inner: &Arc<EngineCore<FlsmPolicy>> = db.db.core();
        let mut state = inner.state.lock();
        // Two level-0 files arm the size trigger.
        fabricate_files(&mut state, &[(0, "a", "c"), (0, "b", "d")]);
        state.default_cf_mut().policy.seek_compaction_pending = true;

        let claimed = inner
            .claim_job(&mut state)
            .expect("the level-0 size trigger yields a job");
        assert_eq!(claimed.claim.job.reason, CompactionReason::Level0Files);
        assert!(
            state.default_cf().policy.seek_compaction_pending,
            "seek request was swallowed by the preempting size-triggered job"
        );
        drop(state);
    }

    /// The flag falls exactly when a seek-triggered job is claimed.
    #[test]
    fn seek_flag_clears_when_the_seek_job_is_scheduled() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100; // no size triggers
        options.enable_aggressive_compaction = false;
        let db = open_empty(options);
        let inner = db.db.core();
        let mut state = inner.state.lock();
        // A level-1 guard with two overlapping sstables: under every size
        // budget, but exactly what a seek-triggered compaction wants.
        fabricate_files(&mut state, &[(1, "a", "c"), (1, "b", "d")]);
        state.default_cf_mut().policy.seek_compaction_pending = true;

        let claimed = inner
            .claim_job(&mut state)
            .expect("the seek request yields a job");
        assert_eq!(claimed.claim.job.reason, CompactionReason::SeekTriggered);
        assert!(!state.default_cf().policy.seek_compaction_pending);
        drop(state);
    }

    /// An unsatisfiable seek request (no guard holds two sstables) is
    /// dropped instead of waking workers forever.
    #[test]
    fn unsatisfiable_seek_flag_is_dropped() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100;
        options.enable_aggressive_compaction = false;
        let db = open_empty(options);
        let inner = db.db.core();
        let mut state = inner.state.lock();
        fabricate_files(&mut state, &[(1, "a", "c")]);
        state.default_cf_mut().policy.seek_compaction_pending = true;

        assert!(inner.claim_job(&mut state).is_none());
        assert!(!state.default_cf().policy.seek_compaction_pending);
        drop(state);
    }

    /// Claims at the same level are disjoint, and the counters see the
    /// overlap.
    #[test]
    fn two_workers_claim_disjoint_guard_subsets() {
        let mut options = StoreOptions::default();
        options.level0_compaction_trigger = 100;
        options.enable_aggressive_compaction = false;
        options.max_sstables_per_guard = 1;
        options.compaction_threads = 2;
        let db = open_empty(options);
        let inner = db.db.core();
        let mut state = inner.state.lock();
        // Two over-budget "guards": the sentinel guard of level 1 would hold
        // all four files, so use disjoint key ranges at levels 1 and 2 to
        // model independent work.
        fabricate_files(
            &mut state,
            &[(1, "a", "b"), (1, "c", "d"), (2, "p", "q"), (2, "r", "s")],
        );

        let claim1 = inner.claim_job(&mut state).expect("first claim");
        let claim2 = inner.claim_job(&mut state).expect("second claim");
        let set1: BTreeSet<u64> = claim1.claim.job.inputs.iter().map(|f| f.number).collect();
        let set2: BTreeSet<u64> = claim2.claim.job.inputs.iter().map(|f| f.number).collect();
        assert!(set1.is_disjoint(&set2));
        assert_eq!(state.active_compactions, 2);
        assert_eq!(state.default_cf().active_jobs, 2);
        assert_eq!(
            pebblesdb_common::counters::EngineCounters::load(
                &inner.counters.max_concurrent_compactions
            ),
            2
        );
        // Outputs of both uncommitted jobs are protected from the GC.
        for number in claim1
            .claim
            .output_numbers
            .iter()
            .chain(&claim2.claim.output_numbers)
        {
            assert!(state.default_cf().pending_outputs.contains(number));
        }
        drop(state);
    }
}
