//! FLSM compaction: merge a guard's sstables, partition by the child guards,
//! and append the fragments to the next level — without rewriting any data
//! already in the next level.
//!
//! This is the heart of the paper (section 3.4): classical LSM compaction
//! must rewrite every overlapping next-level sstable, which is where its
//! write amplification comes from; FLSM only ever *adds* sstables to the next
//! level's guards. The two exceptions from the paper are implemented too:
//! the last level rewrites in place (there is nowhere left to push data), and
//! the second-to-last level may rewrite in place when pushing down would set
//! up a much more expensive last-level merge.

use std::path::Path;
use std::sync::Arc;

use pebblesdb_common::filename::table_file_name;
use pebblesdb_common::iterator::{DbIterator, MergingIterator};
use pebblesdb_common::key::{
    parse_internal_key, InternalKey, SequenceNumber, ValueType, MAX_SEQUENCE_NUMBER,
};
use pebblesdb_common::{Error, ReadOptions, Result, StoreOptions};
use pebblesdb_env::Env;
use pebblesdb_lsm::FileMetaData;
use pebblesdb_sstable::{TableBuilder, TableCache};

use crate::guards::guard_index_for_key;
use crate::version::{CompactionReason, FlsmVersion};

/// A fully described unit of compaction work.
#[derive(Debug)]
pub struct FlsmCompactionJob {
    /// The level being compacted.
    pub level: usize,
    /// Why this compaction was scheduled.
    pub reason: CompactionReason,
    /// Input files (entire guards, or all of level 0).
    pub inputs: Vec<Arc<FileMetaData>>,
    /// The level the outputs are written to (`level + 1`, or `level` for an
    /// in-place rewrite).
    pub output_level: usize,
    /// Sorted guard keys of the output level used to partition the merged
    /// stream (committed plus uncommitted).
    pub partition_keys: Vec<Vec<u8>>,
    /// Uncommitted guard keys of the output level that become committed when
    /// this compaction's edit is applied.
    pub guards_to_commit: Vec<Vec<u8>>,
    /// Whether tombstones can be dropped (only safe when the output level is
    /// the last level of the tree).
    pub drop_tombstones: bool,
    /// Pre-allocated output file numbers.
    pub output_numbers: Vec<u64>,
    /// Total bytes of input (for stats).
    pub input_bytes: u64,
    /// Versions superseded at or below this sequence are invisible to every
    /// live snapshot and may be garbage-collected by the merge.
    pub smallest_snapshot: SequenceNumber,
}

impl FlsmCompactionJob {
    /// Returns `true` if this job rewrites data within its own level.
    pub fn is_in_place(&self) -> bool {
        self.level == self.output_level
    }
}

/// Selects the input guards for a compaction of `level`.
///
/// Guards over the sstable budget are always selected; if none are (the
/// compaction was triggered by level size or the aggressive heuristic), every
/// non-empty guard is selected so the compaction always makes progress.
pub fn select_guard_inputs(
    version: &FlsmVersion,
    level: usize,
    max_sstables_per_guard: usize,
) -> Vec<Arc<FileMetaData>> {
    let flsm_level = &version.levels[level];
    let over_budget: Vec<&crate::guards::GuardMeta> = flsm_level
        .guards
        .iter()
        .filter(|g| g.files.len() > max_sstables_per_guard)
        .collect();
    let selected: Vec<&crate::guards::GuardMeta> = if over_budget.is_empty() {
        flsm_level
            .guards
            .iter()
            .filter(|g| !g.files.is_empty())
            .collect()
    } else {
        over_budget
    };
    // A file spanning several guards is attached to each of them; compact it
    // once.
    let mut seen = std::collections::BTreeSet::new();
    let mut inputs = Vec::new();
    for guard in selected {
        for file in &guard.files {
            if seen.insert(file.number) {
                inputs.push(Arc::clone(file));
            }
        }
    }
    inputs
}

/// Builds a compaction job for the trigger returned by
/// [`FlsmVersionSet::pick_compaction_level`](crate::version::FlsmVersionSet).
///
/// `uncommitted_output_guards` are the pending guard keys for the output
/// level; they become part of the partition key set and are committed by the
/// job. `allocate_number` hands out output file numbers (called under the
/// database lock before the IO starts).
#[allow(clippy::too_many_arguments)]
pub fn build_compaction_job(
    version: &FlsmVersion,
    options: &StoreOptions,
    level: usize,
    reason: CompactionReason,
    uncommitted_output_guards: Vec<Vec<u8>>,
    smallest_snapshot: SequenceNumber,
    mut allocate_number: impl FnMut() -> u64,
) -> Option<FlsmCompactionJob> {
    let last_level = version.num_levels() - 1;

    let inputs: Vec<Arc<FileMetaData>> = if level == 0 {
        version.level0.clone()
    } else if reason == CompactionReason::SeekTriggered {
        // Seek-triggered compactions stay small: merge only the guard with
        // the most overlapping sstables, so read latency improves without
        // paying for a whole-level rewrite every few range queries.
        version.levels[level]
            .guards
            .iter()
            .max_by_key(|g| g.files.len())
            .map(|g| g.files.clone())
            .unwrap_or_default()
    } else {
        select_guard_inputs(version, level, options.max_sstables_per_guard)
    };
    if inputs.is_empty() {
        return None;
    }
    let input_bytes: u64 = inputs.iter().map(|f| f.file_size).sum();

    // Decide the output level.
    let mut output_level = if level == last_level {
        level
    } else {
        level + 1
    };

    // The paper's second-highest-level heuristic: if appending to the last
    // level would land in guards that are already full and much larger than
    // the input, rewrite within this level instead of setting up a huge
    // last-level merge.
    if level + 1 == last_level && level > 0 {
        let smallest = inputs
            .iter()
            .map(|f| f.smallest.user_key().to_vec())
            .min()
            .unwrap_or_default();
        let largest = inputs
            .iter()
            .map(|f| f.largest.user_key().to_vec())
            .max()
            .unwrap_or_default();
        let dest = &version.levels[last_level];
        let mut dest_bytes = 0u64;
        let mut dest_full = false;
        for guard in &dest.guards {
            let overlaps = guard.files.iter().any(|f| {
                f.smallest.user_key() <= largest.as_slice()
                    && smallest.as_slice() <= f.largest.user_key()
            });
            if overlaps {
                dest_bytes += guard.total_bytes();
                if guard.files.len() >= options.max_sstables_per_guard {
                    dest_full = true;
                }
            }
        }
        if dest_full
            && dest_bytes > (options.last_level_merge_io_factor * input_bytes as f64) as u64
        {
            output_level = level;
        }
    }

    // Partition keys: the output level's committed guards plus its pending
    // (uncommitted) guards, which this compaction will commit.
    let mut partition_keys = version.levels[output_level].guard_keys();
    let guards_to_commit: Vec<Vec<u8>> = if output_level > level || level == 0 {
        uncommitted_output_guards
    } else {
        // In-place rewrites keep the existing guard structure; committing new
        // guards here would require splitting files we are not reading.
        Vec::new()
    };
    partition_keys.extend(guards_to_commit.iter().cloned());
    partition_keys.sort();
    partition_keys.dedup();

    // In-place last-level rewrites may drop tombstones: there is no deeper
    // data the tombstone still needs to shadow.
    let drop_tombstones = output_level == last_level && level == last_level;

    let estimated_outputs =
        (input_bytes / options.max_file_size.max(1) as u64) as usize + partition_keys.len() + 2;
    let output_numbers: Vec<u64> = (0..estimated_outputs).map(|_| allocate_number()).collect();

    Some(FlsmCompactionJob {
        level,
        reason,
        inputs,
        output_level,
        partition_keys,
        guards_to_commit,
        drop_tombstones,
        output_numbers,
        input_bytes,
        smallest_snapshot,
    })
}

/// Executes the IO of a compaction job: merge the inputs and write one or
/// more output sstables per destination guard.
///
/// No file already in the output level is read or rewritten — the outputs are
/// purely the fragmented inputs, which is what keeps FLSM write
/// amplification low.
pub fn run_compaction_io(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    table_cache: &TableCache,
    job: &FlsmCompactionJob,
) -> Result<Vec<FileMetaData>> {
    let read_options = ReadOptions::default();
    let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
    for file in &job.inputs {
        children.push(Box::new(table_cache.iter(
            &read_options,
            file.number,
            file.file_size,
        )?));
    }
    let mut merged = MergingIterator::new(children);
    merged.seek_to_first();

    let mut outputs: Vec<FileMetaData> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut next_output = 0usize;
    let mut current_partition: Option<usize> = None;
    let mut last_user_key: Option<Vec<u8>> = None;
    let mut last_sequence_for_key = MAX_SEQUENCE_NUMBER;

    let finish_current = |builder: &mut Option<(u64, TableBuilder)>,
                          outputs: &mut Vec<FileMetaData>|
     -> Result<()> {
        if let Some((number, b)) = builder.take() {
            if b.num_entries() > 0 {
                let smallest = b.first_key().map(|k| k.to_vec()).unwrap_or_default();
                let largest = b.last_key().map(|k| k.to_vec()).unwrap_or_default();
                let size = b.finish()?;
                outputs.push(FileMetaData::new(
                    number,
                    size,
                    InternalKey::from_encoded(smallest),
                    InternalKey::from_encoded(largest),
                ));
            } else {
                b.abandon()?;
            }
        }
        Ok(())
    };

    while merged.valid() {
        let key = merged.key().to_vec();
        let parsed = parse_internal_key(&key)
            .ok_or_else(|| Error::corruption("malformed key during FLSM compaction"))?;

        let is_same_user_key = last_user_key
            .as_deref()
            .map(|last| last == parsed.user_key)
            .unwrap_or(false);
        if !is_same_user_key {
            last_user_key = Some(parsed.user_key.to_vec());
            last_sequence_for_key = MAX_SEQUENCE_NUMBER;
        }
        // A version may be dropped once a newer version of the same key is
        // visible to every live snapshot; tombstones additionally need the
        // output to be the last level.
        let drop_entry = last_sequence_for_key <= job.smallest_snapshot
            || (job.drop_tombstones
                && parsed.value_type == ValueType::Deletion
                && parsed.sequence <= job.smallest_snapshot);
        last_sequence_for_key = parsed.sequence;

        if !drop_entry {
            let partition = guard_index_for_key(&job.partition_keys, parsed.user_key);
            let rotate = current_partition != Some(partition)
                || builder
                    .as_ref()
                    .map(|(_, b)| b.file_size() >= options.max_file_size as u64)
                    .unwrap_or(false);
            if rotate {
                finish_current(&mut builder, &mut outputs)?;
                current_partition = Some(partition);
            }
            if builder.is_none() {
                let number = *job
                    .output_numbers
                    .get(next_output)
                    .ok_or_else(|| Error::internal("ran out of output file numbers"))?;
                next_output += 1;
                let path = table_file_name(db_path, number);
                let file = env.new_writable_file(&path)?;
                builder = Some((number, TableBuilder::new(options, file)));
            }
            let (_, b) = builder.as_mut().expect("builder exists");
            b.add(&key, merged.value())?;
        }
        merged.next();
    }
    finish_current(&mut builder, &mut outputs)?;
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::{FlsmVersionBuilder, FlsmVersionEdit};
    use pebblesdb_common::key::encode_internal_key;
    use pebblesdb_env::MemEnv;
    use pebblesdb_lsm::version::FileMetaDataEdit;
    use std::path::PathBuf;

    fn write_table(
        env: &Arc<dyn Env>,
        db: &Path,
        options: &StoreOptions,
        number: u64,
        keys: &[(&str, u64)],
    ) -> FileMetaDataEdit {
        let path = table_file_name(db, number);
        let file = env.new_writable_file(&path).unwrap();
        let mut builder = TableBuilder::new(options, file);
        let mut encoded: Vec<Vec<u8>> = keys
            .iter()
            .map(|(k, seq)| encode_internal_key(k.as_bytes(), *seq, ValueType::Value))
            .collect();
        encoded.sort_by(|a, b| pebblesdb_common::key::compare_internal_keys(a, b));
        for key in &encoded {
            builder.add(key, b"value").unwrap();
        }
        let smallest = builder.first_key().unwrap().to_vec();
        let largest = builder.last_key().unwrap().to_vec();
        let size = builder.finish().unwrap();
        FileMetaDataEdit {
            number,
            file_size: size,
            smallest,
            largest,
        }
    }

    #[test]
    fn level0_compaction_partitions_by_destination_guards() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-compact");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);

        // Two overlapping level-0 files spanning the whole key space.
        let f1 = write_table(&env, &db, &options, 10, &[("a", 5), ("h", 5), ("q", 5)]);
        let f2 = write_table(&env, &db, &options, 11, &[("c", 6), ("m", 6), ("x", 6)]);

        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, f1));
        edit.new_files.push((0, f2));
        edit.new_guards.push((1, b"h".to_vec()));
        edit.new_guards.push((1, b"q".to_vec()));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 100u64;
        let job = build_compaction_job(
            &version,
            &options,
            0,
            CompactionReason::Level0Files,
            vec![],
            1_000,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        assert_eq!(job.output_level, 1);
        assert_eq!(job.inputs.len(), 2);
        assert_eq!(job.partition_keys, vec![b"h".to_vec(), b"q".to_vec()]);
        assert!(!job.drop_tombstones);

        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        // Keys a,c | h,m | q,x => three partitions => three output files.
        assert_eq!(outputs.len(), 3);
        let mut spans: Vec<(Vec<u8>, Vec<u8>)> = outputs
            .iter()
            .map(|f| {
                (
                    f.smallest.user_key().to_vec(),
                    f.largest.user_key().to_vec(),
                )
            })
            .collect();
        spans.sort();
        assert_eq!(spans[0], (b"a".to_vec(), b"c".to_vec()));
        assert_eq!(spans[1], (b"h".to_vec(), b"m".to_vec()));
        assert_eq!(spans[2], (b"q".to_vec(), b"x".to_vec()));
    }

    #[test]
    fn duplicate_user_keys_keep_only_newest() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-dup");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);

        let f1 = write_table(&env, &db, &options, 20, &[("k", 9)]);
        let f2 = write_table(&env, &db, &options, 21, &[("k", 3)]);
        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, f1));
        edit.new_files.push((0, f2));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 200u64;
        let job = build_compaction_job(
            &version,
            &options,
            0,
            CompactionReason::Level0Files,
            vec![],
            1_000,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        assert_eq!(outputs.len(), 1);
        // Only the newest version survives, so the file holds exactly one key.
        assert_eq!(outputs[0].smallest.user_key(), b"k");
        assert_eq!(outputs[0].largest.user_key(), b"k");
        assert_eq!(outputs[0].smallest.sequence(), 9);
        assert_eq!(outputs[0].largest.sequence(), 9);
    }

    #[test]
    fn guard_selection_prefers_over_budget_guards() {
        let mut options = StoreOptions::default();
        options.max_sstables_per_guard = 1;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-select");
        env.create_dir_all(&db).unwrap();
        let f1 = write_table(&env, &db, &options, 30, &[("a", 1)]);
        let f2 = write_table(&env, &db, &options, 31, &[("b", 2)]);
        let f3 = write_table(&env, &db, &options, 32, &[("z", 3)]);

        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_files.push((1, f1));
        edit.new_files.push((1, f2));
        edit.new_files.push((1, f3));
        builder.apply(&edit);
        let version = builder.finish();

        // The sentinel guard has two files (over the budget of 1); guard "m"
        // has one. Only the sentinel's files are selected.
        let selected = select_guard_inputs(&version, 1, options.max_sstables_per_guard);
        let numbers: Vec<u64> = selected.iter().map(|f| f.number).collect();
        assert!(numbers.contains(&30) && numbers.contains(&31));
        assert!(!numbers.contains(&32));

        // With a higher budget nothing is over budget, so every non-empty
        // guard is selected (progress guarantee for size-triggered runs).
        let selected = select_guard_inputs(&version, 1, 10);
        assert_eq!(selected.len(), 3);
    }

    #[test]
    fn last_level_jobs_rewrite_in_place_and_drop_tombstones() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-last");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let last = options.max_levels - 1;

        let f1 = write_table(&env, &db, &options, 40, &[("a", 1), ("b", 2)]);
        let mut builder = FlsmVersionBuilder::new(options.max_levels);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((last, f1));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 300u64;
        let job = build_compaction_job(
            &version,
            &options,
            last,
            CompactionReason::GuardFanout,
            vec![],
            1_000,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        assert!(job.is_in_place());
        assert_eq!(job.output_level, last);
        assert!(job.drop_tombstones);
    }
}
