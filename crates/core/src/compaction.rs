//! FLSM compaction: merge a guard's sstables, partition by the child guards,
//! and append the fragments to the next level — without rewriting any data
//! already in the next level.
//!
//! This is the heart of the paper (section 3.4): classical LSM compaction
//! must rewrite every overlapping next-level sstable, which is where its
//! write amplification comes from; FLSM only ever *adds* sstables to the next
//! level's guards. The two exceptions from the paper are implemented too:
//! the last level rewrites in place (there is nowhere left to push data), and
//! the second-to-last level may rewrite in place when pushing down would set
//! up a much more expensive last-level merge.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

use pebblesdb_common::filename::table_file_name;
use pebblesdb_common::iterator::{DbIterator, MergingIterator};
use pebblesdb_common::key::{
    parse_internal_key, InternalKey, SequenceNumber, ValueType, MAX_SEQUENCE_NUMBER,
};
use pebblesdb_common::{Error, ReadOptions, Result, StoreOptions};
use pebblesdb_engine::FileMetaData;
use pebblesdb_env::Env;
use pebblesdb_sstable::{TableBuilder, TableCache};

use crate::guards::guard_index_for_key;
use crate::version::{CompactionReason, FlsmVersion};

/// A fully described unit of compaction work.
#[derive(Debug)]
pub struct FlsmCompactionJob {
    /// The level being compacted.
    pub level: usize,
    /// Why this compaction was scheduled.
    pub reason: CompactionReason,
    /// Input files (entire guards, or all of level 0).
    pub inputs: Vec<Arc<FileMetaData>>,
    /// The level the outputs are written to (`level + 1`, or `level` for an
    /// in-place rewrite).
    pub output_level: usize,
    /// Sorted guard keys of the output level used to partition the merged
    /// stream (committed plus uncommitted).
    pub partition_keys: Vec<Vec<u8>>,
    /// Uncommitted guard keys of the output level that become committed when
    /// this compaction's edit is applied.
    pub guards_to_commit: Vec<Vec<u8>>,
    /// Whether tombstones can be dropped (only safe when the output level is
    /// the last level of the tree).
    pub drop_tombstones: bool,
    /// With `drop_tombstones`, which output partitions every one of whose
    /// files is part of this job's inputs. A tombstone may only be dropped in
    /// a *fully covered* partition: a file left behind in the owning guard
    /// may still hold an older value the tombstone must keep shadowing.
    /// Component-based selection makes inputs guard-complete, so this is
    /// defense-in-depth for any future selection strategy that is not.
    /// Empty when `drop_tombstones` is false.
    pub full_partitions: Vec<bool>,
    /// Pre-allocated output file numbers.
    pub output_numbers: Vec<u64>,
    /// Total bytes of input (for stats).
    pub input_bytes: u64,
    /// Versions superseded at or below this sequence are invisible to every
    /// live snapshot and may be garbage-collected by the merge.
    pub smallest_snapshot: SequenceNumber,
}

impl FlsmCompactionJob {
    /// Returns `true` if this job rewrites data within its own level.
    pub fn is_in_place(&self) -> bool {
        self.level == self.output_level
    }
}

/// Groups a level's non-empty guards into connected components linked by
/// *spanning files* (a file attached to several guards because it predates
/// one of their commits).
///
/// A component — not a single guard — is the minimal unit of compaction.
/// Compacting a guard without its span-connected neighbours would push a
/// spanning file's key versions down a level while an unselected neighbour
/// keeps *older* versions of the same keys at the input level, and
/// level-ordered lookups would then return the stale value. Each inner
/// vector holds guard indices; singleton components are the common case
/// (freshly compacted files land in exactly one guard).
fn connected_guard_components(guards: &[crate::guards::GuardMeta]) -> Vec<Vec<usize>> {
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut parent: Vec<usize> = (0..guards.len()).collect();
    let mut first_owner: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for (idx, guard) in guards.iter().enumerate() {
        for file in &guard.files {
            match first_owner.get(&file.number) {
                None => {
                    first_owner.insert(file.number, idx);
                }
                Some(&owner) => {
                    let a = find(&mut parent, idx);
                    let b = find(&mut parent, owner);
                    parent[a] = b;
                }
            }
        }
    }
    let mut components: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (idx, guard) in guards.iter().enumerate() {
        if guard.files.is_empty() {
            continue;
        }
        let root = find(&mut parent, idx);
        components.entry(root).or_default().push(idx);
    }
    components.into_values().collect()
}

/// The distinct files of a guard component, newest first within each guard.
fn component_files(
    guards: &[crate::guards::GuardMeta],
    component: &[usize],
) -> Vec<Arc<FileMetaData>> {
    let mut seen = BTreeSet::new();
    let mut files = Vec::new();
    for &idx in component {
        for file in &guards[idx].files {
            if seen.insert(file.number) {
                files.push(Arc::clone(file));
            }
        }
    }
    files
}

/// Selects the input guard components for a compaction of `level`, skipping
/// components whose files are already claimed by an in-flight job and taking
/// only a `1/split` chunk of the eligible components.
///
/// Components containing a guard over the sstable budget are preferred; if
/// none exist (the compaction was triggered by level size or the aggressive
/// heuristic), every claimable component is eligible so the compaction
/// always makes progress. Chunking is what lets `split` workers each claim
/// a *disjoint component subset* of the same level as independent jobs: the
/// first claimer takes `ceil(n/split)` components, marks their files
/// claimed, and the next claimer's selection excludes them.
pub fn select_guard_inputs(
    version: &FlsmVersion,
    level: usize,
    max_sstables_per_guard: usize,
    claimed: &BTreeSet<u64>,
    split: usize,
) -> Vec<Arc<FileMetaData>> {
    let guards = &version.levels[level].guards;
    let components = connected_guard_components(guards);
    let claimable = |component: &&Vec<usize>| {
        component.iter().all(|&idx| {
            guards[idx]
                .files
                .iter()
                .all(|f| !claimed.contains(&f.number))
        })
    };
    let over_budget = |component: &&Vec<usize>| {
        component
            .iter()
            .any(|&idx| guards[idx].files.len() > max_sstables_per_guard)
    };
    let any_over_budget = components.iter().any(|c| over_budget(&c));
    // When over-budget components exist but are all claimed, the trigger is
    // already being serviced; returning nothing (instead of compacting
    // innocent small components) avoids pointless write amplification.
    let eligible: Vec<&Vec<usize>> = components
        .iter()
        .filter(|c| !any_over_budget || over_budget(c))
        .filter(claimable)
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    let take = eligible.len().div_ceil(split.max(1));
    let mut seen = BTreeSet::new();
    let mut inputs = Vec::new();
    for component in eligible.into_iter().take(take) {
        for file in component_files(guards, component) {
            if seen.insert(file.number) {
                inputs.push(file);
            }
        }
    }
    inputs
}

/// Selects the inputs of a seek-triggered compaction at `level`: the whole
/// component around the claimable guard with the most overlapping sstables.
/// Returns nothing when no claimable guard holds at least two files — a
/// seek compaction of a single file would rewrite data without reducing any
/// overlap, so the request stays pending instead.
fn select_seek_inputs(
    version: &FlsmVersion,
    level: usize,
    claimed: &BTreeSet<u64>,
) -> Vec<Arc<FileMetaData>> {
    let guards = &version.levels[level].guards;
    let components = connected_guard_components(guards);
    let best = components
        .iter()
        .filter(|component| {
            component.iter().all(|&idx| {
                guards[idx]
                    .files
                    .iter()
                    .all(|f| !claimed.contains(&f.number))
            })
        })
        .map(|component| {
            let fanout = component
                .iter()
                .map(|&idx| guards[idx].files.len())
                .max()
                .unwrap_or(0);
            (fanout, component)
        })
        .filter(|(fanout, _)| *fanout >= 2)
        .max_by_key(|(fanout, _)| *fanout);
    match best {
        Some((_, component)) => component_files(guards, component),
        None => Vec::new(),
    }
}

/// Builds a compaction job for one of the triggers returned by
/// [`FlsmVersionSet::compaction_candidates`](crate::version::FlsmVersionSet).
///
/// `uncommitted_output_guards` are the pending guard keys for the output
/// level; they become part of the partition key set and are committed by the
/// job. `claimed` holds the file numbers of every in-flight job's inputs —
/// the new job's inputs never intersect it, which is what keeps concurrent
/// workers on disjoint guard subsets. `split` is the worker-pool size used
/// to chunk a level's eligible guards across jobs. `allocate_number` hands
/// out output file numbers (called under the database lock before the IO
/// starts). Returns `None` when every eligible guard is claimed.
#[allow(clippy::too_many_arguments)]
pub fn build_compaction_job(
    version: &FlsmVersion,
    options: &StoreOptions,
    level: usize,
    reason: CompactionReason,
    uncommitted_output_guards: Vec<Vec<u8>>,
    smallest_snapshot: SequenceNumber,
    claimed: &BTreeSet<u64>,
    split: usize,
    mut allocate_number: impl FnMut() -> u64,
) -> Option<FlsmCompactionJob> {
    let last_level = version.num_levels() - 1;

    let inputs: Vec<Arc<FileMetaData>> = if level == 0 {
        // Level-0 files overlap freely, so a level-0 job takes all of them —
        // and therefore cannot run while another level-0 job is in flight.
        if version.level0.iter().any(|f| claimed.contains(&f.number)) {
            return None;
        }
        version.level0.clone()
    } else if reason == CompactionReason::SeekTriggered {
        // Seek-triggered compactions stay small: merge only the component
        // around the (unclaimed) guard with the most overlapping sstables,
        // so read latency improves without paying for a whole-level rewrite
        // every few range queries.
        select_seek_inputs(version, level, claimed)
    } else {
        select_guard_inputs(
            version,
            level,
            options.max_sstables_per_guard,
            claimed,
            split,
        )
    };
    if inputs.is_empty() {
        return None;
    }
    let input_bytes: u64 = inputs.iter().map(|f| f.file_size).sum();

    // Decide the output level.
    let mut output_level = if level == last_level {
        level
    } else {
        level + 1
    };

    // The paper's second-highest-level heuristic: if appending to the last
    // level would land in guards that are already full and much larger than
    // the input, rewrite within this level instead of setting up a huge
    // last-level merge.
    if level + 1 == last_level && level > 0 {
        let smallest = inputs
            .iter()
            .map(|f| f.smallest.user_key().to_vec())
            .min()
            .unwrap_or_default();
        let largest = inputs
            .iter()
            .map(|f| f.largest.user_key().to_vec())
            .max()
            .unwrap_or_default();
        let dest = &version.levels[last_level];
        let mut dest_bytes = 0u64;
        let mut dest_full = false;
        for guard in &dest.guards {
            let overlaps = guard.files.iter().any(|f| {
                f.smallest.user_key() <= largest.as_slice()
                    && smallest.as_slice() <= f.largest.user_key()
            });
            if overlaps {
                dest_bytes += guard.total_bytes();
                if guard.files.len() >= options.max_sstables_per_guard {
                    dest_full = true;
                }
            }
        }
        if dest_full
            && dest_bytes > (options.last_level_merge_io_factor * input_bytes as f64) as u64
        {
            output_level = level;
        }
    }

    // Partition keys: the output level's committed guards plus its pending
    // (uncommitted) guards, which this compaction will commit.
    let mut partition_keys = version.levels[output_level].guard_keys();
    let guards_to_commit: Vec<Vec<u8>> = if output_level > level || level == 0 {
        uncommitted_output_guards
    } else {
        // In-place rewrites keep the existing guard structure; committing new
        // guards here would require splitting files we are not reading.
        Vec::new()
    };
    partition_keys.extend(guards_to_commit.iter().cloned());
    partition_keys.sort();
    partition_keys.dedup();

    // In-place last-level rewrites may drop tombstones: there is no deeper
    // data the tombstone still needs to shadow. Per-partition coverage is
    // computed so tombstones are kept wherever the owning guard has files
    // outside this job's inputs (those files may hold older values the
    // tombstone still shadows).
    let drop_tombstones = output_level == last_level && level == last_level;
    let full_partitions: Vec<bool> = if drop_tombstones {
        let input_numbers: BTreeSet<u64> = inputs.iter().map(|f| f.number).collect();
        // In-place jobs commit no new guards, so partition i is exactly
        // guard i of the level (0 = sentinel).
        version.levels[output_level]
            .guards
            .iter()
            .map(|g| g.files.iter().all(|f| input_numbers.contains(&f.number)))
            .collect()
    } else {
        Vec::new()
    };

    let estimated_outputs =
        (input_bytes / options.max_file_size.max(1) as u64) as usize + partition_keys.len() + 2;
    let output_numbers: Vec<u64> = (0..estimated_outputs).map(|_| allocate_number()).collect();

    Some(FlsmCompactionJob {
        level,
        reason,
        inputs,
        output_level,
        partition_keys,
        guards_to_commit,
        drop_tombstones,
        full_partitions,
        output_numbers,
        input_bytes,
        smallest_snapshot,
    })
}

/// Executes the IO of a compaction job: merge the inputs and write one or
/// more output sstables per destination guard.
///
/// No file already in the output level is read or rewritten — the outputs are
/// purely the fragmented inputs, which is what keeps FLSM write
/// amplification low.
pub fn run_compaction_io(
    env: &dyn Env,
    db_path: &Path,
    options: &StoreOptions,
    table_cache: &TableCache,
    job: &FlsmCompactionJob,
) -> Result<Vec<FileMetaData>> {
    let read_options = ReadOptions::default();
    let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
    for file in &job.inputs {
        children.push(Box::new(table_cache.iter(
            &read_options,
            file.number,
            file.file_size,
        )?));
    }
    let mut merged = MergingIterator::new(children);
    merged.seek_to_first();

    let mut outputs: Vec<FileMetaData> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut next_output = 0usize;
    let mut current_partition: Option<usize> = None;
    let mut last_user_key: Option<Vec<u8>> = None;
    let mut last_sequence_for_key = MAX_SEQUENCE_NUMBER;

    let finish_current = |builder: &mut Option<(u64, TableBuilder)>,
                          outputs: &mut Vec<FileMetaData>|
     -> Result<()> {
        if let Some((number, b)) = builder.take() {
            if b.num_entries() > 0 {
                let smallest = b.first_key().map(|k| k.to_vec()).unwrap_or_default();
                let largest = b.last_key().map(|k| k.to_vec()).unwrap_or_default();
                let size = b.finish()?;
                outputs.push(FileMetaData::new(
                    number,
                    size,
                    InternalKey::from_encoded(smallest),
                    InternalKey::from_encoded(largest),
                ));
            } else {
                b.abandon()?;
            }
        }
        Ok(())
    };

    while merged.valid() {
        let key = merged.key().to_vec();
        let parsed = parse_internal_key(&key)
            .ok_or_else(|| Error::corruption("malformed key during FLSM compaction"))?;

        let is_same_user_key = last_user_key
            .as_deref()
            .map(|last| last == parsed.user_key)
            .unwrap_or(false);
        if !is_same_user_key {
            last_user_key = Some(parsed.user_key.to_vec());
            last_sequence_for_key = MAX_SEQUENCE_NUMBER;
        }
        let partition = guard_index_for_key(&job.partition_keys, parsed.user_key);
        // A version may be dropped once a newer version of the same key is
        // visible to every live snapshot; tombstones additionally need the
        // output to be the last level *and* the owning guard fully covered by
        // this job's inputs (a leftover file could hold an older value the
        // tombstone still shadows).
        let tombstone_droppable = job.full_partitions.get(partition).copied().unwrap_or(true);
        let drop_entry = last_sequence_for_key <= job.smallest_snapshot
            || (job.drop_tombstones
                && tombstone_droppable
                && parsed.value_type == ValueType::Deletion
                && parsed.sequence <= job.smallest_snapshot);
        last_sequence_for_key = parsed.sequence;

        if !drop_entry {
            let rotate = current_partition != Some(partition)
                || builder
                    .as_ref()
                    .map(|(_, b)| b.file_size() >= options.max_file_size as u64)
                    .unwrap_or(false);
            if rotate {
                finish_current(&mut builder, &mut outputs)?;
                current_partition = Some(partition);
            }
            if builder.is_none() {
                let number = *job
                    .output_numbers
                    .get(next_output)
                    .ok_or_else(|| Error::internal("ran out of output file numbers"))?;
                next_output += 1;
                let path = table_file_name(db_path, number);
                let file = env.new_writable_file(&path)?;
                builder = Some((
                    number,
                    TableBuilder::new_for_level(options, file, job.output_level),
                ));
            }
            let (_, b) = builder.as_mut().expect("builder exists");
            b.add(&key, merged.value())?;
        }
        merged.next();
    }
    finish_current(&mut builder, &mut outputs)?;
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::{FlsmVersionBuilder, FlsmVersionEdit};
    use pebblesdb_common::key::encode_internal_key;
    use pebblesdb_engine::FileMetaDataEdit;
    use pebblesdb_env::MemEnv;
    use std::path::PathBuf;

    fn write_table(
        env: &Arc<dyn Env>,
        db: &Path,
        options: &StoreOptions,
        number: u64,
        keys: &[(&str, u64)],
    ) -> FileMetaDataEdit {
        let path = table_file_name(db, number);
        let file = env.new_writable_file(&path).unwrap();
        let mut builder = TableBuilder::new(options, file);
        let mut encoded: Vec<Vec<u8>> = keys
            .iter()
            .map(|(k, seq)| encode_internal_key(k.as_bytes(), *seq, ValueType::Value))
            .collect();
        encoded.sort_by(|a, b| pebblesdb_common::key::compare_internal_keys(a, b));
        for key in &encoded {
            builder.add(key, b"value").unwrap();
        }
        let smallest = builder.first_key().unwrap().to_vec();
        let largest = builder.last_key().unwrap().to_vec();
        let size = builder.finish().unwrap();
        FileMetaDataEdit {
            number,
            file_size: size,
            smallest,
            largest,
        }
    }

    #[test]
    fn level0_compaction_partitions_by_destination_guards() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-compact");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);

        // Two overlapping level-0 files spanning the whole key space.
        let f1 = write_table(&env, &db, &options, 10, &[("a", 5), ("h", 5), ("q", 5)]);
        let f2 = write_table(&env, &db, &options, 11, &[("c", 6), ("m", 6), ("x", 6)]);

        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, f1));
        edit.new_files.push((0, f2));
        edit.new_guards.push((1, b"h".to_vec()));
        edit.new_guards.push((1, b"q".to_vec()));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 100u64;
        let job = build_compaction_job(
            &version,
            &options,
            0,
            CompactionReason::Level0Files,
            vec![],
            1_000,
            &BTreeSet::new(),
            1,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        assert_eq!(job.output_level, 1);
        assert_eq!(job.inputs.len(), 2);
        assert_eq!(job.partition_keys, vec![b"h".to_vec(), b"q".to_vec()]);
        assert!(!job.drop_tombstones);

        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        // Keys a,c | h,m | q,x => three partitions => three output files.
        assert_eq!(outputs.len(), 3);
        let mut spans: Vec<(Vec<u8>, Vec<u8>)> = outputs
            .iter()
            .map(|f| {
                (
                    f.smallest.user_key().to_vec(),
                    f.largest.user_key().to_vec(),
                )
            })
            .collect();
        spans.sort();
        assert_eq!(spans[0], (b"a".to_vec(), b"c".to_vec()));
        assert_eq!(spans[1], (b"h".to_vec(), b"m".to_vec()));
        assert_eq!(spans[2], (b"q".to_vec(), b"x".to_vec()));
    }

    #[test]
    fn duplicate_user_keys_keep_only_newest() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-dup");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);

        let f1 = write_table(&env, &db, &options, 20, &[("k", 9)]);
        let f2 = write_table(&env, &db, &options, 21, &[("k", 3)]);
        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, f1));
        edit.new_files.push((0, f2));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 200u64;
        let job = build_compaction_job(
            &version,
            &options,
            0,
            CompactionReason::Level0Files,
            vec![],
            1_000,
            &BTreeSet::new(),
            1,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        assert_eq!(outputs.len(), 1);
        // Only the newest version survives, so the file holds exactly one key.
        assert_eq!(outputs[0].smallest.user_key(), b"k");
        assert_eq!(outputs[0].largest.user_key(), b"k");
        assert_eq!(outputs[0].smallest.sequence(), 9);
        assert_eq!(outputs[0].largest.sequence(), 9);
    }

    #[test]
    fn guard_selection_prefers_over_budget_guards() {
        let mut options = StoreOptions::default();
        options.max_sstables_per_guard = 1;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-select");
        env.create_dir_all(&db).unwrap();
        let f1 = write_table(&env, &db, &options, 30, &[("a", 1)]);
        let f2 = write_table(&env, &db, &options, 31, &[("b", 2)]);
        let f3 = write_table(&env, &db, &options, 32, &[("z", 3)]);

        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_files.push((1, f1));
        edit.new_files.push((1, f2));
        edit.new_files.push((1, f3));
        builder.apply(&edit);
        let version = builder.finish();

        // The sentinel guard has two files (over the budget of 1); guard "m"
        // has one. Only the sentinel's files are selected.
        let selected = select_guard_inputs(
            &version,
            1,
            options.max_sstables_per_guard,
            &BTreeSet::new(),
            1,
        );
        let numbers: Vec<u64> = selected.iter().map(|f| f.number).collect();
        assert!(numbers.contains(&30) && numbers.contains(&31));
        assert!(!numbers.contains(&32));

        // With a higher budget nothing is over budget, so every non-empty
        // guard is selected (progress guarantee for size-triggered runs).
        let selected = select_guard_inputs(&version, 1, 10, &BTreeSet::new(), 1);
        assert_eq!(selected.len(), 3);
    }

    #[test]
    fn last_level_jobs_rewrite_in_place_and_drop_tombstones() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-last");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let last = options.max_levels - 1;

        let f1 = write_table(&env, &db, &options, 40, &[("a", 1), ("b", 2)]);
        let mut builder = FlsmVersionBuilder::new(options.max_levels);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((last, f1));
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 300u64;
        let job = build_compaction_job(
            &version,
            &options,
            last,
            CompactionReason::GuardFanout,
            vec![],
            1_000,
            &BTreeSet::new(),
            1,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        assert!(job.is_in_place());
        assert_eq!(job.output_level, last);
        assert!(job.drop_tombstones);
        // The whole level is in the inputs, so every partition is coverable.
        assert!(job.full_partitions.iter().all(|full| *full));
    }

    #[test]
    fn concurrent_claims_pick_disjoint_guard_subsets() {
        let mut options = StoreOptions::default();
        options.max_sstables_per_guard = 1;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-claim");
        env.create_dir_all(&db).unwrap();
        // Two over-budget guards: sentinel {50, 51} and "m" {52, 53}.
        let f1 = write_table(&env, &db, &options, 50, &[("a", 1)]);
        let f2 = write_table(&env, &db, &options, 51, &[("b", 2)]);
        let f3 = write_table(&env, &db, &options, 52, &[("m", 3)]);
        let f4 = write_table(&env, &db, &options, 53, &[("n", 4)]);

        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        for f in [f1, f2, f3, f4] {
            edit.new_files.push((1, f));
        }
        builder.apply(&edit);
        let version = builder.finish();

        let mut next = 400u64;
        let mut alloc = || {
            next += 1;
            next
        };
        let mut claimed = BTreeSet::new();
        // Worker 1 of a 2-worker pool takes one guard...
        let job1 = build_compaction_job(
            &version,
            &options,
            1,
            CompactionReason::GuardFanout,
            vec![],
            1_000,
            &claimed,
            2,
            &mut alloc,
        )
        .unwrap();
        claimed.extend(job1.inputs.iter().map(|f| f.number));
        // ... worker 2 takes the other ...
        let job2 = build_compaction_job(
            &version,
            &options,
            1,
            CompactionReason::GuardFanout,
            vec![],
            1_000,
            &claimed,
            2,
            &mut alloc,
        )
        .unwrap();
        claimed.extend(job2.inputs.iter().map(|f| f.number));
        let set1: BTreeSet<u64> = job1.inputs.iter().map(|f| f.number).collect();
        let set2: BTreeSet<u64> = job2.inputs.iter().map(|f| f.number).collect();
        assert!(set1.is_disjoint(&set2), "{set1:?} overlaps {set2:?}");
        assert_eq!(set1.len() + set2.len(), 4, "every file is claimed once");

        // ... and worker 3 finds nothing left at this level.
        let job3 = build_compaction_job(
            &version,
            &options,
            1,
            CompactionReason::GuardFanout,
            vec![],
            1_000,
            &claimed,
            2,
            &mut alloc,
        );
        assert!(job3.is_none());
    }

    #[test]
    fn level0_job_is_exclusive_while_claimed() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-l0-claim");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let f1 = write_table(&env, &db, &options, 60, &[("a", 1)]);
        let f2 = write_table(&env, &db, &options, 61, &[("b", 2)]);
        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, f1));
        edit.new_files.push((0, f2));
        builder.apply(&edit);
        let version = builder.finish();

        let claimed: BTreeSet<u64> = [60u64].into_iter().collect();
        let mut next = 500u64;
        let job = build_compaction_job(
            &version,
            &options,
            0,
            CompactionReason::Level0Files,
            vec![],
            1_000,
            &claimed,
            4,
            || {
                next += 1;
                next
            },
        );
        assert!(job.is_none(), "level 0 must not be double-compacted");
    }

    /// Writes the fixture used by the spanning-file tests: last level holds
    /// sentinel-guard files 70 ("a") and 73 ("c"), a file 71 *spanning* into
    /// guard "m" with a tombstone for "n", and file 72 with an older value
    /// of "n" inside guard "m".
    fn spanning_tombstone_version(
        env: &Arc<dyn Env>,
        db: &Path,
        options: &StoreOptions,
    ) -> FlsmVersion {
        let last = options.max_levels - 1;
        let f_a = write_table(env, db, options, 70, &[("a", 1)]);
        let f_b = write_table(env, db, options, 73, &[("c", 5)]);
        let path = table_file_name(db, 71);
        let file = env.new_writable_file(&path).unwrap();
        let mut spanning = TableBuilder::new(options, file);
        let mut keys = vec![
            encode_internal_key(b"b", 3, ValueType::Value),
            encode_internal_key(b"n", 9, ValueType::Deletion),
        ];
        keys.sort_by(|a, b| pebblesdb_common::key::compare_internal_keys(a, b));
        for key in &keys {
            spanning.add(key, b"").unwrap();
        }
        let smallest = spanning.first_key().unwrap().to_vec();
        let largest = spanning.last_key().unwrap().to_vec();
        let size = spanning.finish().unwrap();
        let f_span = FileMetaDataEdit {
            number: 71,
            file_size: size,
            smallest,
            largest,
        };
        let f_n_old = write_table(env, db, options, 72, &[("n", 2)]);

        let mut builder = FlsmVersionBuilder::new(options.max_levels);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_files.push((last, f_a));
        edit.new_files.push((last, f_b));
        edit.new_files.push((last, f_span));
        edit.new_files.push((last, f_n_old));
        builder.apply(&edit);
        builder.finish()
    }

    /// A file spanning two guards welds them into one compaction component:
    /// selecting either guard must pull in the other, otherwise the spanning
    /// file's newer key versions would sink a level while the unselected
    /// guard keeps older versions of the same keys at the input level —
    /// and level-ordered lookups would return the stale value.
    #[test]
    fn spanning_files_pull_their_whole_component_into_the_job() {
        let mut options = StoreOptions::default();
        options.max_sstables_per_guard = 2;
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-component");
        env.create_dir_all(&db).unwrap();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);
        let last = options.max_levels - 1;
        let version = spanning_tombstone_version(&env, &db, &options);

        let mut next = 600u64;
        let job = build_compaction_job(
            &version,
            &options,
            last,
            CompactionReason::GuardFanout,
            vec![],
            1_000, // every sequence is below the snapshot floor
            &BTreeSet::new(),
            1,
            || {
                next += 1;
                next
            },
        )
        .unwrap();
        // The over-budget sentinel guard drags guard "m" in through the
        // spanning file 71, so the whole component is the input set and
        // every partition is fully covered.
        let input_numbers: BTreeSet<u64> = job.inputs.iter().map(|f| f.number).collect();
        assert_eq!(input_numbers, [70u64, 71, 72, 73].into_iter().collect());
        assert!(job.drop_tombstones);
        assert_eq!(job.full_partitions, vec![true, true]);

        // With the component fully covered, the tombstone for "n" and the
        // older value it shadows are both dropped for good.
        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        for meta in &outputs {
            let mut iter = table_cache
                .iter(&ReadOptions::default(), meta.number, meta.file_size)
                .unwrap();
            iter.seek_to_first();
            while iter.valid() {
                let parsed = parse_internal_key(iter.key()).unwrap();
                assert_ne!(
                    parsed.user_key, b"n",
                    "key n should be fully compacted away"
                );
                iter.next();
            }
        }
    }

    /// Defense-in-depth for `full_partitions`: if a job's inputs ever cover
    /// a guard only partially (hand-built here; component selection does not
    /// produce such jobs), tombstones in the uncovered partition must
    /// survive the merge — dropping one would resurrect the older value
    /// still sitting in the file left behind.
    #[test]
    fn tombstones_survive_in_partially_covered_partitions() {
        let mut options = StoreOptions::default();
        options.max_sstables_per_guard = 2;
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-tomb");
        env.create_dir_all(&db).unwrap();
        let table_cache = TableCache::new(Arc::clone(&env), db.clone(), options.clone(), 16);
        let last = options.max_levels - 1;
        let version = spanning_tombstone_version(&env, &db, &options);

        // Hand-build a job covering only the sentinel guard's own files plus
        // the spanning file — guard "m" keeps file 72 (older "n").
        let guards = &version.levels[last].guards;
        let inputs: Vec<Arc<FileMetaData>> = guards[0].files.to_vec();
        let job = FlsmCompactionJob {
            level: last,
            reason: CompactionReason::GuardFanout,
            inputs,
            output_level: last,
            partition_keys: vec![b"m".to_vec()],
            guards_to_commit: vec![],
            drop_tombstones: true,
            full_partitions: vec![true, false],
            output_numbers: vec![900, 901, 902],
            input_bytes: 0,
            smallest_snapshot: 1_000,
        };
        let outputs = run_compaction_io(env.as_ref(), &db, &options, &table_cache, &job).unwrap();
        let mut survived_tombstone = false;
        for meta in &outputs {
            let mut iter = table_cache
                .iter(&ReadOptions::default(), meta.number, meta.file_size)
                .unwrap();
            iter.seek_to_first();
            while iter.valid() {
                let parsed = parse_internal_key(iter.key()).unwrap();
                if parsed.user_key == b"n" && parsed.value_type == ValueType::Deletion {
                    survived_tombstone = true;
                }
                iter.next();
            }
        }
        assert!(survived_tombstone, "tombstone was dropped unsafely");
    }
}
