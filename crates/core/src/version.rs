//! FLSM versions: guard-organised file metadata and its MANIFEST encoding.
//!
//! The structure mirrors the baseline LSM's `version` module but each level (from 1
//! down) is a list of [`GuardMeta`]s instead of a sorted run of disjoint
//! files. Version edits additionally carry newly committed guard keys, which
//! is the only extra metadata PebblesDB persists compared to its
//! HyperLevelDB base (section 4.3.1 of the paper).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Weak};

use pebblesdb_common::coding::{put_length_prefixed_slice, put_varint32, put_varint64, Decoder};
use pebblesdb_common::filename::{current_file_name, descriptor_file_name};
use pebblesdb_common::key::{parse_internal_key, LookupKey, SequenceNumber, ValueType};
use pebblesdb_common::vlog::{LookupValue, ValuePointer};
use pebblesdb_common::{Error, ReadOptions, Result, StoreOptions};
use pebblesdb_engine::policy::{VersionMeta, VersionSetOps};
use pebblesdb_engine::{FileMetaData, FileMetaDataEdit};
use pebblesdb_env::Env;
use pebblesdb_sstable::TableCache;
use pebblesdb_wal::{LogReader, LogWriter};

use crate::guards::{guard_index_for_key, GuardMeta};

/// One guard-organised level of the FLSM.
#[derive(Debug, Clone, Default)]
pub struct FlsmLevel {
    /// `guards[0]` is the sentinel (empty key); the rest are sorted by key.
    pub guards: Vec<GuardMeta>,
}

impl FlsmLevel {
    /// Creates a level with only an empty sentinel guard.
    pub fn empty() -> Self {
        FlsmLevel {
            guards: vec![GuardMeta::new(Vec::new())],
        }
    }

    /// The guard keys of this level, excluding the sentinel.
    pub fn guard_keys(&self) -> Vec<Vec<u8>> {
        self.guards.iter().skip(1).map(|g| g.key.clone()).collect()
    }

    /// The guard that owns `user_key`.
    pub fn guard_for(&self, user_key: &[u8]) -> &GuardMeta {
        // Binary search directly over the guard list (sentinel first), so the
        // read path allocates nothing.
        let count = self
            .guards
            .partition_point(|g| g.is_sentinel() || g.key.as_slice() <= user_key);
        &self.guards[count.saturating_sub(1)]
    }

    /// Total bytes across every guard (files spanning several guards are
    /// counted once).
    pub fn total_bytes(&self) -> u64 {
        self.unique_files().iter().map(|f| f.file_size).sum()
    }

    /// Total number of distinct files across every guard.
    pub fn num_files(&self) -> usize {
        self.unique_files().len()
    }

    /// The distinct files of this level.
    ///
    /// A file whose key range spans several guards (because a guard was
    /// committed after the file was written) is attached to each guard it
    /// overlaps so point lookups stay correct; aggregations must therefore
    /// de-duplicate by file number.
    pub fn unique_files(&self) -> Vec<Arc<FileMetaData>> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for guard in &self.guards {
            for file in &guard.files {
                if seen.insert(file.number) {
                    out.push(Arc::clone(file));
                }
            }
        }
        out
    }

    /// The largest number of sstables held by any single guard.
    pub fn max_files_in_guard(&self) -> usize {
        self.guards.iter().map(|g| g.files.len()).max().unwrap_or(0)
    }

    /// Number of guards with no sstables (tracked for the empty-guard
    /// experiment, Figure 5.4 of the paper).
    pub fn empty_guards(&self) -> usize {
        self.guards.iter().filter(|g| g.files.is_empty()).count()
    }
}

/// An immutable snapshot of the whole FLSM file layout.
#[derive(Debug, Default)]
pub struct FlsmVersion {
    /// Level-0 files (no guards), newest first.
    pub level0: Vec<Arc<FileMetaData>>,
    /// Guard-organised levels; index 0 is unused.
    pub levels: Vec<FlsmLevel>,
}

impl FlsmVersion {
    /// Creates an empty version with `max_levels` levels.
    pub fn new(max_levels: usize) -> Self {
        FlsmVersion {
            level0: Vec::new(),
            levels: (0..max_levels).map(|_| FlsmLevel::empty()).collect(),
        }
    }

    /// Number of levels (including level 0).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        if level == 0 {
            self.level0.iter().map(|f| f.file_size).sum()
        } else {
            self.levels[level].total_bytes()
        }
    }

    /// Number of files at `level`.
    pub fn level_files(&self, level: usize) -> usize {
        if level == 0 {
            self.level0.len()
        } else {
            self.levels[level].num_files()
        }
    }

    /// Total number of live files.
    pub fn num_files(&self) -> usize {
        (0..self.num_levels()).map(|l| self.level_files(l)).sum()
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        (0..self.num_levels()).map(|l| self.level_bytes(l)).sum()
    }

    /// Sizes of every live file (Table 5.1 of the paper).
    pub fn file_sizes(&self) -> Vec<u64> {
        let mut sizes: Vec<u64> = self.level0.iter().map(|f| f.file_size).collect();
        for level in self.levels.iter().skip(1) {
            sizes.extend(level.unique_files().iter().map(|f| f.file_size));
        }
        sizes
    }

    /// All file numbers referenced by this version.
    pub fn live_file_numbers(&self) -> Vec<u64> {
        let mut numbers: Vec<u64> = self.level0.iter().map(|f| f.number).collect();
        for level in self.levels.iter().skip(1) {
            numbers.extend(level.unique_files().iter().map(|f| f.number));
        }
        numbers
    }

    /// Number of guards per level (sentinel included), for diagnostics.
    pub fn guards_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.guards.len()).collect()
    }

    /// Total number of empty guards across all levels.
    pub fn empty_guards(&self) -> usize {
        self.levels.iter().skip(1).map(|l| l.empty_guards()).sum()
    }

    /// Human-readable per-level summary (`L0:n L1:files/guards ...`).
    pub fn level_summary(&self) -> String {
        let mut parts = vec![format!("L0:{}", self.level0.len())];
        for (idx, level) in self.levels.iter().enumerate().skip(1) {
            parts.push(format!(
                "L{idx}:{}f/{}g",
                level.num_files(),
                level.guards.len()
            ));
        }
        parts.join(" ")
    }

    /// Point lookup across the whole version.
    pub fn get(
        &self,
        read_options: &ReadOptions,
        key: &LookupKey,
        table_cache: &TableCache,
    ) -> Result<Option<LookupValue>> {
        let user_key = key.user_key();

        // Level 0: all overlapping files, newest first.
        let mut level0: Vec<&Arc<FileMetaData>> = self
            .level0
            .iter()
            .filter(|f| f.smallest.user_key() <= user_key && user_key <= f.largest.user_key())
            .collect();
        level0.sort_by_key(|f| std::cmp::Reverse(f.number));
        for file in level0 {
            // Level-0 files are recency-ordered by number: flushes are
            // serialized by the single flush thread.
            if let Some((_, decided)) = search_file(read_options, file, key, table_cache)? {
                return Ok(decided);
            }
        }

        // Levels 1..: exactly one guard per level can own the key. The
        // sstables inside a guard overlap freely and — now that concurrent
        // compaction jobs at different levels may deliver files into the same
        // guard out of file-number order — the newest-number-first heuristic
        // is no longer a total order on recency. Each candidate file is
        // consulted (bloom filters skip most) and the match with the highest
        // sequence number wins.
        for level in self.levels.iter().skip(1) {
            let guard = level.guard_for(user_key);
            let mut best: Option<(SequenceNumber, Option<LookupValue>)> = None;
            for file in guard
                .files
                .iter()
                .filter(|f| f.smallest.user_key() <= user_key && user_key <= f.largest.user_key())
            {
                if let Some((sequence, value)) = search_file(read_options, file, key, table_cache)?
                {
                    if best.as_ref().map(|(s, _)| sequence > *s).unwrap_or(true) {
                        best = Some((sequence, value));
                    }
                }
            }
            if let Some((_, decided)) = best {
                return Ok(decided);
            }
        }
        Ok(None)
    }

    /// Checks the structural invariants concurrent compaction commits must
    /// preserve. Returns a description of the first violation found.
    ///
    /// Invariants:
    /// * every guard level starts with the sentinel guard and its remaining
    ///   guard keys are strictly sorted (so guard ranges are disjoint);
    /// * a guard at level `i` is also a guard at every deeper level;
    /// * every file attached to a guard overlaps that guard's key range, and
    ///   every guard a file overlaps holds it (point lookups inspect exactly
    ///   one guard, so a missing attachment is a lost key).
    ///
    /// Called via `debug_assert!` after every version commit; release builds
    /// pay nothing.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (level_idx, level) in self.levels.iter().enumerate().skip(1) {
            let guards = &level.guards;
            if guards.is_empty() || !guards[0].is_sentinel() {
                return Err(format!("L{level_idx}: missing sentinel guard"));
            }
            for pair in guards.windows(2) {
                if pair[1].key.is_empty() {
                    return Err(format!("L{level_idx}: duplicate sentinel guard"));
                }
                if !pair[0].is_sentinel() && pair[0].key >= pair[1].key {
                    return Err(format!(
                        "L{level_idx}: guards out of order ({:?} >= {:?})",
                        pair[0].key, pair[1].key
                    ));
                }
            }
            // Guards propagate to deeper levels.
            if level_idx + 1 < self.levels.len() {
                let deeper = &self.levels[level_idx + 1];
                for guard in guards.iter().skip(1) {
                    if !deeper.guards.iter().any(|g| g.key == guard.key) {
                        return Err(format!(
                            "L{level_idx}: guard {:?} missing from L{}",
                            guard.key,
                            level_idx + 1
                        ));
                    }
                }
            }
            let keys: Vec<Vec<u8>> = level.guard_keys();
            for (guard_idx, guard) in guards.iter().enumerate() {
                let lower: &[u8] = &guard.key;
                let upper: Option<&[u8]> = guards.get(guard_idx + 1).map(|g| g.key.as_slice());
                for file in &guard.files {
                    let overlaps = file.largest.user_key() >= lower
                        && upper.is_none_or(|u| file.smallest.user_key() < u);
                    if !overlaps {
                        return Err(format!(
                            "L{level_idx}: file {} does not overlap guard {:?}",
                            file.number, guard.key
                        ));
                    }
                }
            }
            // Every guard a file's range overlaps must hold the file.
            for file in level.unique_files() {
                let first = guard_index_for_key(&keys, file.smallest.user_key());
                let last = guard_index_for_key(&keys, file.largest.user_key());
                for guard in guards.iter().take(last + 1).skip(first) {
                    if !guard.files.iter().any(|f| f.number == file.number) {
                        return Err(format!(
                            "L{level_idx}: file {} missing from overlapped guard {:?}",
                            file.number, guard.key
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Searches one sstable; the outer `Option` says whether this file holds a
/// version of the key, the payload is that version's sequence and its value
/// (`None` = tombstone) so callers can pick the newest match across the
/// overlapping files of a guard.
fn search_file(
    read_options: &ReadOptions,
    file: &Arc<FileMetaData>,
    key: &LookupKey,
    table_cache: &TableCache,
) -> Result<Option<(SequenceNumber, Option<LookupValue>)>> {
    let table = table_cache.get_table(file.number, file.file_size)?;
    if !table.may_contain_user_key(key.user_key()) {
        return Ok(None);
    }
    match table.get(read_options, key.internal_key())? {
        Some((found_key, value)) => match parse_internal_key(&found_key) {
            Some(parsed) if parsed.user_key == key.user_key() => match parsed.value_type {
                ValueType::Value => Ok(Some((parsed.sequence, Some(LookupValue::Inline(value))))),
                ValueType::ValuePointer => Ok(Some((
                    parsed.sequence,
                    Some(LookupValue::Pointer(ValuePointer::decode(&value)?)),
                ))),
                ValueType::Deletion => Ok(Some((parsed.sequence, None))),
            },
            _ => Ok(None),
        },
        None => Ok(None),
    }
}

/// A record of FLSM layout changes, persisted in the MANIFEST.
#[derive(Debug, Default, Clone)]
pub struct FlsmVersionEdit {
    /// New write-ahead log number.
    pub log_number: Option<u64>,
    /// Next file number to allocate.
    pub next_file_number: Option<u64>,
    /// Last sequence number.
    pub last_sequence: Option<SequenceNumber>,
    /// Files removed: `(level, file number)`.
    pub deleted_files: Vec<(usize, u64)>,
    /// Files added: `(level, metadata)`. Files are re-attached to guards by
    /// their smallest key when the version is rebuilt.
    pub new_files: Vec<(usize, FileMetaDataEdit)>,
    /// Guard keys committed at a level (they also apply to deeper levels,
    /// which is re-derived when the version is rebuilt).
    pub new_guards: Vec<(usize, Vec<u8>)>,
}

const TAG_LOG_NUMBER: u32 = 1;
const TAG_NEXT_FILE_NUMBER: u32 = 2;
const TAG_LAST_SEQUENCE: u32 = 3;
const TAG_DELETED_FILE: u32 = 4;
const TAG_NEW_FILE: u32 = 5;
const TAG_NEW_GUARD: u32 = 7;

impl FlsmVersionEdit {
    /// Serialises the edit.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint32(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint32(&mut out, TAG_NEXT_FILE_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint32(&mut out, TAG_LAST_SEQUENCE);
            put_varint64(&mut out, v);
        }
        for (level, number) in &self.deleted_files {
            put_varint32(&mut out, TAG_DELETED_FILE);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, *number);
        }
        for (level, file) in &self.new_files {
            put_varint32(&mut out, TAG_NEW_FILE);
            put_varint32(&mut out, *level as u32);
            put_varint64(&mut out, file.number);
            put_varint64(&mut out, file.file_size);
            put_length_prefixed_slice(&mut out, &file.smallest);
            put_length_prefixed_slice(&mut out, &file.largest);
        }
        for (level, key) in &self.new_guards {
            put_varint32(&mut out, TAG_NEW_GUARD);
            put_varint32(&mut out, *level as u32);
            put_length_prefixed_slice(&mut out, key);
        }
        out
    }

    /// Decodes an edit.
    pub fn decode(data: &[u8]) -> Result<FlsmVersionEdit> {
        let mut edit = FlsmVersionEdit::default();
        let mut dec = Decoder::new(data);
        while !dec.is_empty() {
            let tag = dec.read_varint32()?;
            match tag {
                TAG_LOG_NUMBER => edit.log_number = Some(dec.read_varint64()?),
                TAG_NEXT_FILE_NUMBER => edit.next_file_number = Some(dec.read_varint64()?),
                TAG_LAST_SEQUENCE => edit.last_sequence = Some(dec.read_varint64()?),
                TAG_DELETED_FILE => {
                    let level = dec.read_varint32()? as usize;
                    let number = dec.read_varint64()?;
                    edit.deleted_files.push((level, number));
                }
                TAG_NEW_FILE => {
                    let level = dec.read_varint32()? as usize;
                    let number = dec.read_varint64()?;
                    let file_size = dec.read_varint64()?;
                    let smallest = dec.read_length_prefixed_slice()?.to_vec();
                    let largest = dec.read_length_prefixed_slice()?.to_vec();
                    edit.new_files.push((
                        level,
                        FileMetaDataEdit {
                            number,
                            file_size,
                            smallest,
                            largest,
                        },
                    ));
                }
                TAG_NEW_GUARD => {
                    let level = dec.read_varint32()? as usize;
                    let key = dec.read_length_prefixed_slice()?.to_vec();
                    edit.new_guards.push((level, key));
                }
                other => {
                    return Err(Error::corruption(format!(
                        "unknown FLSM version edit tag {other}"
                    )))
                }
            }
        }
        Ok(edit)
    }

    /// Convenience helper to record a new file.
    pub fn add_file(&mut self, level: usize, file: &FileMetaData) {
        self.new_files.push((
            level,
            FileMetaDataEdit {
                number: file.number,
                file_size: file.file_size,
                smallest: file.smallest.encoded().to_vec(),
                largest: file.largest.encoded().to_vec(),
            },
        ));
    }

    /// Convenience helper to record a deleted file.
    pub fn delete_file(&mut self, level: usize, number: u64) {
        self.deleted_files.push((level, number));
    }
}

/// Rebuilds an [`FlsmVersion`] from guard keys and file lists.
pub struct FlsmVersionBuilder {
    max_levels: usize,
    /// Guard keys per level (sentinel excluded).
    guard_keys: Vec<BTreeSet<Vec<u8>>>,
    /// Files per level (level 0 included at index 0).
    files: Vec<Vec<Arc<FileMetaData>>>,
}

impl FlsmVersionBuilder {
    /// Starts from an existing version.
    pub fn from_version(version: &FlsmVersion) -> Self {
        let max_levels = version.num_levels();
        let mut guard_keys = vec![BTreeSet::new(); max_levels];
        let mut files = vec![Vec::new(); max_levels];
        files[0] = version.level0.clone();
        for (level_idx, level) in version.levels.iter().enumerate().skip(1) {
            for guard in &level.guards {
                if !guard.is_sentinel() {
                    guard_keys[level_idx].insert(guard.key.clone());
                }
            }
            files[level_idx] = level.unique_files();
        }
        FlsmVersionBuilder {
            max_levels,
            guard_keys,
            files,
        }
    }

    /// Starts from an empty version with `max_levels` levels.
    pub fn new(max_levels: usize) -> Self {
        FlsmVersionBuilder {
            max_levels,
            guard_keys: vec![BTreeSet::new(); max_levels],
            files: vec![Vec::new(); max_levels],
        }
    }

    /// Applies one edit.
    pub fn apply(&mut self, edit: &FlsmVersionEdit) {
        for (level, key) in &edit.new_guards {
            // A guard at level i is a guard at every deeper level too.
            for deeper in *level..self.max_levels {
                self.guard_keys[deeper].insert(key.clone());
            }
        }
        for (level, number) in &edit.deleted_files {
            if *level < self.max_levels {
                self.files[*level].retain(|f| f.number != *number);
            }
        }
        for (level, file) in &edit.new_files {
            if *level < self.max_levels {
                self.files[*level].push(Arc::new(FileMetaData::new(
                    file.number,
                    file.file_size,
                    pebblesdb_common::InternalKey::from_encoded(file.smallest.clone()),
                    pebblesdb_common::InternalKey::from_encoded(file.largest.clone()),
                )));
            }
        }
    }

    /// Produces the resulting version, attaching files to guards by their
    /// smallest user key.
    pub fn finish(self) -> FlsmVersion {
        let mut version = FlsmVersion::new(self.max_levels);
        let mut level0 = self.files[0].clone();
        level0.sort_by_key(|f| std::cmp::Reverse(f.number));
        version.level0 = level0;

        for level_idx in 1..self.max_levels {
            let keys: Vec<Vec<u8>> = self.guard_keys[level_idx].iter().cloned().collect();
            let mut guards: Vec<GuardMeta> = Vec::with_capacity(keys.len() + 1);
            guards.push(GuardMeta::new(Vec::new()));
            for key in &keys {
                guards.push(GuardMeta::new(key.clone()));
            }
            for file in &self.files[level_idx] {
                // A file is attached to every guard its key range overlaps.
                // Freshly compacted files land in exactly one guard; only
                // files written before a guard was committed can span more.
                let first = guard_index_for_key(&keys, file.smallest.user_key());
                let last = guard_index_for_key(&keys, file.largest.user_key());
                for guard in guards.iter_mut().take(last + 1).skip(first) {
                    guard.files.push(Arc::clone(file));
                }
            }
            for guard in &mut guards {
                guard.files.sort_by_key(|f| std::cmp::Reverse(f.number));
            }
            version.levels[level_idx] = FlsmLevel { guards };
        }
        version
    }
}

/// Why a compaction was scheduled (used for stats and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionReason {
    /// Too many level-0 files.
    Level0Files,
    /// Some guard exceeded `max_sstables_per_guard`.
    GuardFanout,
    /// A level exceeded its byte budget.
    LevelBytes,
    /// The level is close in size to the next level (aggressive compaction).
    Aggressive,
    /// Requested by the consecutive-seek heuristic.
    SeekTriggered,
    /// Explicitly requested (flush / compact_all).
    Manual,
}

/// Owns the current [`FlsmVersion`], the MANIFEST and file numbering.
pub struct FlsmVersionSet {
    env: Arc<dyn Env>,
    db_path: PathBuf,
    options: StoreOptions,
    current: Arc<FlsmVersion>,
    live_versions: Vec<Weak<FlsmVersion>>,
    manifest: Option<LogWriter>,
    manifest_number: u64,
    next_file_number: u64,
    /// Sequence number of the most recent write.
    pub last_sequence: SequenceNumber,
    /// Write-ahead log number reflected in `current`.
    pub log_number: u64,
}

impl FlsmVersionSet {
    /// Creates a version set for the database at `db_path`.
    pub fn new(env: Arc<dyn Env>, db_path: PathBuf, options: StoreOptions) -> Self {
        let levels = options.max_levels;
        FlsmVersionSet {
            env,
            db_path,
            options,
            current: Arc::new(FlsmVersion::new(levels)),
            live_versions: Vec::new(),
            manifest: None,
            manifest_number: 1,
            next_file_number: 2,
            last_sequence: 0,
            log_number: 0,
        }
    }

    /// The current version, pinned against file deletion.
    pub fn current(&mut self) -> Arc<FlsmVersion> {
        let version = Arc::clone(&self.current);
        self.live_versions.push(Arc::downgrade(&version));
        version
    }

    /// A read-only peek at the current version.
    pub fn current_unpinned(&self) -> &Arc<FlsmVersion> {
        &self.current
    }

    /// Allocates a new file number.
    pub fn new_file_number(&mut self) -> u64 {
        let number = self.next_file_number;
        self.next_file_number += 1;
        number
    }

    /// Marks `number` as used (during recovery).
    pub fn mark_file_number_used(&mut self, number: u64) {
        if self.next_file_number <= number {
            self.next_file_number = number + 1;
        }
    }

    /// The file number of the live MANIFEST.
    pub fn manifest_number(&self) -> u64 {
        self.manifest_number
    }

    /// The store options.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// File numbers referenced by the current version or any pinned version.
    pub fn all_live_file_numbers(&mut self) -> Vec<u64> {
        self.live_files_and_pins().0
    }

    /// File numbers referenced by the current version or any pinned version,
    /// plus whether a version *other than* `current` contributed (a read or
    /// cursor still pins it). Both facts come from the same observation of
    /// the pin list — a GC that keeps a pinned version's files must also
    /// learn that a later pass may find more garbage, even if the pin drops
    /// immediately afterwards.
    pub fn live_files_and_pins(&mut self) -> (Vec<u64>, bool) {
        let mut live = self.current.live_file_numbers();
        self.live_versions.retain(|weak| weak.strong_count() > 0);
        let mut pinned = false;
        for weak in &self.live_versions {
            if let Some(version) = weak.upgrade() {
                if !Arc::ptr_eq(&version, &self.current) {
                    pinned = true;
                    live.extend(version.live_file_numbers());
                }
            }
        }
        live.sort_unstable();
        live.dedup();
        (live, pinned)
    }

    /// Writes a fresh MANIFEST for an empty database.
    pub fn create_new(&mut self) -> Result<()> {
        self.rewrite_manifest()
    }

    /// Recovers from the MANIFEST named by `CURRENT`.
    pub fn recover(&mut self) -> Result<()> {
        let current = self
            .env
            .read_file_to_vec(&current_file_name(&self.db_path))?;
        let name = String::from_utf8_lossy(&current);
        let name = name.trim();
        let manifest_number: u64 = name
            .strip_prefix("MANIFEST-")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| Error::corruption("CURRENT does not name a manifest"))?;
        let path = self.db_path.join(name);
        let file = self.env.new_sequential_file(&path)?;
        let mut reader = LogReader::new(file);

        let mut builder = FlsmVersionBuilder::new(self.options.max_levels);
        while let Some(record) = reader.read_record()? {
            let edit = FlsmVersionEdit::decode(&record)?;
            if let Some(v) = edit.log_number {
                self.log_number = v;
            }
            if let Some(v) = edit.next_file_number {
                self.next_file_number = v;
            }
            if let Some(v) = edit.last_sequence {
                self.last_sequence = v;
            }
            builder.apply(&edit);
        }
        self.current = Arc::new(builder.finish());
        self.mark_file_number_used(manifest_number);
        self.rewrite_manifest()?;
        Ok(())
    }

    /// Applies `edit`, logs it, and installs the resulting version.
    pub fn log_and_apply(&mut self, mut edit: FlsmVersionEdit) -> Result<Arc<FlsmVersion>> {
        if edit.log_number.is_none() {
            edit.log_number = Some(self.log_number);
        }
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);

        let mut builder = FlsmVersionBuilder::from_version(&self.current);
        builder.apply(&edit);
        let next = Arc::new(builder.finish());
        // Guards must stay sorted and disjoint after every commit — with
        // concurrent compaction jobs merging their edits through this
        // serialized path, a violation here means two jobs claimed
        // overlapping work.
        #[cfg(debug_assertions)]
        if let Err(violation) = next.validate() {
            panic!("FLSM version invariant violated after commit: {violation}");
        }

        if self.manifest.is_none() {
            self.rewrite_manifest()?;
        }
        if let Some(manifest) = self.manifest.as_mut() {
            manifest.add_record(&edit.encode())?;
            manifest.sync()?;
        }
        if let Some(v) = edit.log_number {
            self.log_number = v;
        }
        self.current = Arc::clone(&next);
        Ok(next)
    }

    /// Writes a full-snapshot MANIFEST and points `CURRENT` at it.
    fn rewrite_manifest(&mut self) -> Result<()> {
        let manifest_number = self.new_file_number();
        let path = descriptor_file_name(&self.db_path, manifest_number);
        let file = self.env.new_writable_file(&path)?;
        let mut writer = LogWriter::new(file);

        let mut snapshot = FlsmVersionEdit {
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            log_number: Some(self.log_number),
            ..Default::default()
        };
        for file in &self.current.level0 {
            snapshot.add_file(0, file);
        }
        for (level_idx, level) in self.current.levels.iter().enumerate().skip(1) {
            for guard in &level.guards {
                if !guard.is_sentinel() {
                    snapshot.new_guards.push((level_idx, guard.key.clone()));
                }
                for file in &guard.files {
                    snapshot.add_file(level_idx, file);
                }
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.sync()?;
        self.manifest = Some(writer);
        self.manifest_number = manifest_number;
        self.env.write_string_to_file_sync(
            &current_file_name(&self.db_path),
            format!("MANIFEST-{manifest_number:06}\n").as_bytes(),
        )?;
        Ok(())
    }

    /// Decides whether (and why) a compaction is needed, and at which level.
    pub fn pick_compaction_level(&self) -> Option<(usize, CompactionReason)> {
        self.compaction_candidates().into_iter().next()
    }

    /// Every level that currently wants a compaction, in priority order
    /// (level 0 pressure, guard fanout, byte budgets, aggressive merging).
    ///
    /// The compaction pool walks this list so a worker whose preferred level
    /// is fully claimed by in-flight jobs can still pick up independent work
    /// at another level. Each level appears at most once, under its
    /// highest-priority reason.
    pub fn compaction_candidates(&self) -> Vec<(usize, CompactionReason)> {
        let version = &self.current;
        let mut candidates = Vec::new();
        let mut seen = vec![false; version.num_levels()];
        let push = |candidates: &mut Vec<(usize, CompactionReason)>,
                    seen: &mut Vec<bool>,
                    level: usize,
                    reason: CompactionReason| {
            if !seen[level] {
                seen[level] = true;
                candidates.push((level, reason));
            }
        };
        // Level 0 is governed by file count.
        if version.level0.len() >= self.options.level0_compaction_trigger {
            push(&mut candidates, &mut seen, 0, CompactionReason::Level0Files);
        }
        // A guard over its sstable budget forces a compaction of its level.
        // This includes the last level, which rewrites its guards in place
        // (the paper's "exception to the no-rewrite rule").
        for level in 1..version.num_levels() {
            if version.levels[level].max_files_in_guard() > self.options.max_sstables_per_guard {
                push(
                    &mut candidates,
                    &mut seen,
                    level,
                    CompactionReason::GuardFanout,
                );
            }
        }
        // Byte budgets.
        for level in 1..version.num_levels() - 1 {
            if version.level_bytes(level) > self.options.max_bytes_for_level(level) {
                push(
                    &mut candidates,
                    &mut seen,
                    level,
                    CompactionReason::LevelBytes,
                );
            }
        }
        // Aggressive compaction: level i close in size to level i+1.
        if self.options.enable_aggressive_compaction {
            for level in 1..version.num_levels() - 1 {
                let this = version.level_bytes(level);
                let next = version.level_bytes(level + 1);
                if this > 0
                    && next > 0
                    && (this as f64) >= self.options.aggressive_compaction_ratio * (next as f64)
                    && this >= self.options.max_bytes_for_level(level) / 2
                {
                    push(
                        &mut candidates,
                        &mut seen,
                        level,
                        CompactionReason::Aggressive,
                    );
                }
            }
        }
        candidates
    }

    /// Returns `true` if background compaction work is pending.
    pub fn needs_compaction(&self) -> bool {
        self.pick_compaction_level().is_some()
    }
}

impl VersionMeta for FlsmVersion {
    fn level0_len(&self) -> usize {
        self.level0.len()
    }
    fn total_bytes(&self) -> u64 {
        FlsmVersion::total_bytes(self)
    }
    fn num_files(&self) -> usize {
        FlsmVersion::num_files(self)
    }
    fn file_sizes(&self) -> Vec<u64> {
        FlsmVersion::file_sizes(self)
    }
    fn level_summary(&self) -> String {
        FlsmVersion::level_summary(self)
    }
}

impl VersionSetOps for FlsmVersionSet {
    type Version = FlsmVersion;

    fn recover(&mut self) -> Result<()> {
        FlsmVersionSet::recover(self)
    }
    fn create_new(&mut self) -> Result<()> {
        FlsmVersionSet::create_new(self)
    }
    fn log_number(&self) -> u64 {
        self.log_number
    }
    fn last_sequence(&self) -> SequenceNumber {
        self.last_sequence
    }
    fn set_last_sequence(&mut self, seq: SequenceNumber) {
        self.last_sequence = seq;
    }
    fn new_file_number(&mut self) -> u64 {
        FlsmVersionSet::new_file_number(self)
    }
    fn mark_file_number_used(&mut self, number: u64) {
        FlsmVersionSet::mark_file_number_used(self, number)
    }
    fn manifest_number(&self) -> u64 {
        FlsmVersionSet::manifest_number(self)
    }
    fn current(&mut self) -> Arc<FlsmVersion> {
        FlsmVersionSet::current(self)
    }
    fn current_unpinned(&self) -> &Arc<FlsmVersion> {
        FlsmVersionSet::current_unpinned(self)
    }
    fn live_files_and_pins(&mut self) -> (Vec<u64>, bool) {
        FlsmVersionSet::live_files_and_pins(self)
    }
    fn needs_compaction(&self) -> bool {
        FlsmVersionSet::needs_compaction(self)
    }
    fn commit_level0(
        &mut self,
        meta: Option<&FileMetaData>,
        log_number: Option<u64>,
    ) -> Result<()> {
        let mut edit = FlsmVersionEdit {
            log_number,
            ..Default::default()
        };
        if let Some(meta) = meta {
            edit.add_file(0, meta);
        }
        self.log_and_apply(edit).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::{InternalKey, ValueType};
    use pebblesdb_env::MemEnv;

    fn file_edit(number: u64, smallest: &str, largest: &str) -> FileMetaDataEdit {
        FileMetaDataEdit {
            number,
            file_size: 1000,
            smallest: InternalKey::new(smallest.as_bytes(), 9, ValueType::Value)
                .encoded()
                .to_vec(),
            largest: InternalKey::new(largest.as_bytes(), 1, ValueType::Value)
                .encoded()
                .to_vec(),
        }
    }

    #[test]
    fn edit_roundtrip_including_guards() {
        let mut edit = FlsmVersionEdit {
            log_number: Some(4),
            last_sequence: Some(99),
            ..Default::default()
        };
        edit.new_files.push((1, file_edit(7, "c", "h")));
        edit.deleted_files.push((0, 3));
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_guards.push((2, b"t".to_vec()));

        let decoded = FlsmVersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded.log_number, Some(4));
        assert_eq!(decoded.last_sequence, Some(99));
        assert_eq!(decoded.new_files.len(), 1);
        assert_eq!(decoded.deleted_files, vec![(0, 3)]);
        assert_eq!(
            decoded.new_guards,
            vec![(1, b"m".to_vec()), (2, b"t".to_vec())]
        );
    }

    #[test]
    fn builder_attaches_files_to_owning_guards() {
        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_files.push((1, file_edit(10, "a", "d"))); // Sentinel.
        edit.new_files.push((1, file_edit(11, "p", "z"))); // Guard "m".
        edit.new_files.push((1, file_edit(12, "m", "n"))); // Guard "m".
        edit.new_files.push((0, file_edit(13, "a", "z"))); // Level 0.
        builder.apply(&edit);
        let version = builder.finish();

        assert_eq!(version.level0.len(), 1);
        let level1 = &version.levels[1];
        assert_eq!(level1.guards.len(), 2);
        assert!(level1.guards[0].is_sentinel());
        assert_eq!(level1.guards[0].files.len(), 1);
        assert_eq!(level1.guards[1].key, b"m".to_vec());
        assert_eq!(level1.guards[1].files.len(), 2);
        // Newest first inside the guard.
        assert_eq!(level1.guards[1].files[0].number, 12);

        // A guard at level 1 is also a guard at deeper levels.
        assert_eq!(version.levels[2].guards.len(), 2);
        assert_eq!(version.levels[3].guards.len(), 2);

        // Lookups resolve guard ownership.
        assert_eq!(level1.guard_for(b"b").key, b"");
        assert_eq!(level1.guard_for(b"q").key, b"m");
        assert_eq!(version.empty_guards(), 2 + 2);
        assert!(version.level_summary().starts_with("L0:1 L1:3f/2g"));
    }

    #[test]
    fn deleting_files_keeps_guards() {
        let mut builder = FlsmVersionBuilder::new(3);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"g".to_vec()));
        edit.new_files.push((1, file_edit(5, "h", "k")));
        builder.apply(&edit);
        let mut second = FlsmVersionEdit::default();
        second.delete_file(1, 5);
        builder.apply(&second);
        let version = builder.finish();
        assert_eq!(version.levels[1].num_files(), 0);
        assert_eq!(version.levels[1].guards.len(), 2);
        assert_eq!(version.empty_guards(), 4);
    }

    #[test]
    fn version_set_persists_guards_across_recovery() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm");
        env.create_dir_all(&db).unwrap();
        let opts = StoreOptions::default();

        let mut vs = FlsmVersionSet::new(Arc::clone(&env), db.clone(), opts.clone());
        vs.create_new().unwrap();
        vs.last_sequence = 500;
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"guard-key".to_vec()));
        edit.new_files.push((1, file_edit(8, "x", "z")));
        vs.log_and_apply(edit).unwrap();

        let mut recovered = FlsmVersionSet::new(Arc::clone(&env), db, opts);
        recovered.recover().unwrap();
        assert_eq!(recovered.last_sequence, 500);
        let version = recovered.current_unpinned();
        assert_eq!(version.levels[1].guards.len(), 2);
        assert_eq!(version.levels[1].guards[1].key, b"guard-key".to_vec());
        assert_eq!(version.levels[1].num_files(), 1);
    }

    #[test]
    fn validate_accepts_built_versions_and_rejects_broken_ones() {
        let mut builder = FlsmVersionBuilder::new(4);
        let mut edit = FlsmVersionEdit::default();
        edit.new_guards.push((1, b"m".to_vec()));
        edit.new_files.push((1, file_edit(10, "a", "d")));
        edit.new_files.push((1, file_edit(11, "m", "z")));
        builder.apply(&edit);
        let version = builder.finish();
        assert!(version.validate().is_ok());

        // Out-of-order guards are rejected.
        let mut broken = FlsmVersion::new(4);
        broken.levels[1].guards = vec![
            GuardMeta::new(Vec::new()),
            GuardMeta::new(b"t".to_vec()),
            GuardMeta::new(b"g".to_vec()),
        ];
        assert!(broken.validate().is_err());

        // A file attached to a guard it cannot overlap is rejected.
        let mut misfiled = FlsmVersion::new(4);
        misfiled.levels[1].guards = vec![GuardMeta::new(Vec::new()), GuardMeta::new(b"m".to_vec())];
        misfiled.levels[2].guards = vec![GuardMeta::new(Vec::new()), GuardMeta::new(b"m".to_vec())];
        misfiled.levels[3].guards = vec![GuardMeta::new(Vec::new()), GuardMeta::new(b"m".to_vec())];
        let edit = file_edit(20, "x", "z");
        let file = Arc::new(FileMetaData::new(
            edit.number,
            edit.file_size,
            pebblesdb_common::InternalKey::from_encoded(edit.smallest),
            pebblesdb_common::InternalKey::from_encoded(edit.largest),
        ));
        misfiled.levels[1].guards[0].files.push(file);
        assert!(misfiled.validate().is_err());
    }

    #[test]
    fn compaction_candidates_list_every_triggered_level_once() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm-candidates");
        env.create_dir_all(&db).unwrap();
        let mut opts = StoreOptions::default();
        opts.level0_compaction_trigger = 2;
        opts.max_sstables_per_guard = 2;
        opts.enable_aggressive_compaction = false;
        let mut vs = FlsmVersionSet::new(env, db, opts);
        vs.create_new().unwrap();

        // Trigger level 0 (two files) and guard fanout at levels 1 and 2.
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, file_edit(10, "a", "b")));
        edit.new_files.push((0, file_edit(11, "c", "d")));
        for n in 20..23 {
            edit.new_files.push((1, file_edit(n, "k", "p")));
        }
        for n in 30..33 {
            edit.new_files.push((2, file_edit(n, "k", "p")));
        }
        vs.log_and_apply(edit).unwrap();

        let candidates = vs.compaction_candidates();
        assert_eq!(
            candidates,
            vec![
                (0, CompactionReason::Level0Files),
                (1, CompactionReason::GuardFanout),
                (2, CompactionReason::GuardFanout),
            ]
        );
        // The single-level picker returns the highest-priority candidate.
        assert_eq!(
            vs.pick_compaction_level(),
            Some((0, CompactionReason::Level0Files))
        );
    }

    #[test]
    fn compaction_triggers_cover_level0_guards_and_bytes() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/flsm2");
        env.create_dir_all(&db).unwrap();
        let mut opts = StoreOptions::default();
        opts.level0_compaction_trigger = 2;
        opts.max_sstables_per_guard = 2;
        opts.base_level_bytes = 2500;
        opts.enable_aggressive_compaction = false;
        let mut vs = FlsmVersionSet::new(env, db, opts);
        vs.create_new().unwrap();
        assert!(!vs.needs_compaction());

        // Two level-0 files trigger a level-0 compaction.
        let mut edit = FlsmVersionEdit::default();
        edit.new_files.push((0, file_edit(10, "a", "b")));
        edit.new_files.push((0, file_edit(11, "c", "d")));
        vs.log_and_apply(edit).unwrap();
        assert_eq!(
            vs.pick_compaction_level(),
            Some((0, CompactionReason::Level0Files))
        );

        // Guard fanout trigger: three files in one guard with budget 2.
        let mut edit = FlsmVersionEdit::default();
        edit.delete_file(0, 10);
        edit.delete_file(0, 11);
        for n in 20..23 {
            edit.new_files.push((1, file_edit(n, "k", "p")));
        }
        vs.log_and_apply(edit).unwrap();
        assert_eq!(
            vs.pick_compaction_level(),
            Some((1, CompactionReason::GuardFanout))
        );
    }
}
