//! Range-query iterators over guard-organised levels.
//!
//! The paper (section 3.4): "in FLSM, the level iterators are themselves
//! implemented by merging iterators on the sstables inside the guard of
//! interest". [`GuardLevelIterator`] does exactly that — it walks a level's
//! guards in key order, and within the current guard merges its (possibly
//! overlapping) sstables; sstables are only opened when the cursor reaches
//! their guard.

use std::sync::Arc;

use pebblesdb_common::iterator::{DbIterator, MergingIterator};
use pebblesdb_common::key::extract_user_key;
use pebblesdb_common::{ReadOptions, Result};
use pebblesdb_sstable::TableCache;

use crate::guards::{guard_index_for_key, GuardMeta};

/// A lazy iterator over one guard-organised FLSM level.
pub struct GuardLevelIterator {
    table_cache: Arc<TableCache>,
    read_options: ReadOptions,
    /// The level's guards (sentinel first), cloned from the pinned version.
    guards: Vec<GuardMeta>,
    /// Guard keys (sentinel excluded), kept for binary search.
    guard_keys: Vec<Vec<u8>>,
    /// Index of the guard the cursor is in; `guards.len()` = unpositioned.
    index: usize,
    current: Option<MergingIterator>,
    /// First error hit while opening a guard; ends iteration.
    error: Option<pebblesdb_common::Error>,
    /// Threads used to pre-position a guard's sstables on `seek` (the
    /// paper's "parallel seeks"); `<= 1` disables the optimisation.
    parallel_seek_threads: usize,
}

impl GuardLevelIterator {
    /// Creates an iterator over the given guards.
    pub fn new(
        table_cache: Arc<TableCache>,
        read_options: ReadOptions,
        guards: Vec<GuardMeta>,
    ) -> Self {
        let guard_keys = guards
            .iter()
            .filter(|g| !g.is_sentinel())
            .map(|g| g.key.clone())
            .collect();
        let index = guards.len();
        GuardLevelIterator {
            table_cache,
            read_options,
            guards,
            guard_keys,
            index,
            current: None,
            error: None,
            parallel_seek_threads: 1,
        }
    }

    fn record_open_error(&mut self, result: Result<()>) -> bool {
        match result {
            Ok(()) => true,
            Err(err) => {
                self.error = Some(err);
                self.current = None;
                false
            }
        }
    }

    /// Enables parallel positioning of a guard's sstables on `seek`.
    ///
    /// Section 4.2 of the paper: a seek into a guard must position an
    /// iterator in *every* sstable of the guard; doing so with a thread pool
    /// hides the per-sstable IO latency on the coldest (deepest) level.
    pub fn with_parallel_seeks(mut self, threads: usize) -> Self {
        self.parallel_seek_threads = threads.max(1);
        self
    }

    /// Warms the guard's sstables for `target` with a thread pool, so the
    /// serial merged seek that follows hits cache.
    fn parallel_warm_guard(&self, index: usize, target: &[u8]) {
        if self.parallel_seek_threads <= 1 {
            return;
        }
        let Some(guard) = self.guards.get(index) else {
            return;
        };
        if guard.files.len() <= 1 {
            return;
        }
        let files: Vec<(u64, u64)> = guard
            .files
            .iter()
            .map(|f| (f.number, f.file_size))
            .collect();
        let chunk_size = files.len().div_ceil(self.parallel_seek_threads).max(1);
        // Capture only the Sync pieces; `self` also holds the (non-Sync)
        // current merging iterator.
        let table_cache = &self.table_cache;
        let read_options = &self.read_options;
        std::thread::scope(|scope| {
            for chunk in files.chunks(chunk_size) {
                scope.spawn(move || {
                    for (number, size) in chunk {
                        if let Ok(mut iter) = table_cache.iter(read_options, *number, *size) {
                            iter.seek(target);
                        }
                    }
                });
            }
        });
    }

    /// The guard-key bounds `[lower, upper)` of guard `index`.
    ///
    /// Files written before a guard was committed may span several guards
    /// (they are attached to each guard they overlap); bounding iteration to
    /// the guard's own key range ensures every entry is emitted exactly once
    /// and in global key order.
    fn guard_bounds(&self, index: usize) -> (Option<&[u8]>, Option<&[u8]>) {
        let lower = if index == 0 {
            None
        } else {
            self.guard_keys.get(index - 1).map(|k| k.as_slice())
        };
        let upper = self.guard_keys.get(index).map(|k| k.as_slice());
        (lower, upper)
    }

    fn open_guard(&mut self, index: usize) -> Result<()> {
        self.index = index;
        if index >= self.guards.len() {
            self.current = None;
            return Ok(());
        }
        let guard = &self.guards[index];
        if guard.files.is_empty() {
            self.current = None;
            return Ok(());
        }
        let mut children: Vec<Box<dyn DbIterator>> = Vec::with_capacity(guard.files.len());
        for file in &guard.files {
            children.push(Box::new(self.table_cache.iter(
                &self.read_options,
                file.number,
                file.file_size,
            )?));
        }
        self.current = Some(MergingIterator::new(children));
        Ok(())
    }

    /// Returns `true` if the current entry lies inside the current guard's
    /// key range.
    fn current_entry_in_bounds(&self) -> bool {
        let Some(iter) = self.current.as_ref() else {
            return false;
        };
        if !iter.valid() {
            return false;
        }
        let user_key = extract_user_key(iter.key());
        let (lower, upper) = self.guard_bounds(self.index);
        if let Some(lower) = lower {
            if user_key < lower {
                return false;
            }
        }
        if let Some(upper) = upper {
            if user_key >= upper {
                return false;
            }
        }
        true
    }

    /// Skips forward over entries below the guard's lower bound (they belong
    /// to an earlier guard and were emitted there).
    fn skip_below_lower_bound(&mut self) {
        let lower = match self.guard_bounds(self.index).0 {
            Some(lower) => lower.to_vec(),
            None => return,
        };
        while let Some(iter) = self.current.as_mut() {
            if !iter.valid() || extract_user_key(iter.key()) >= lower.as_slice() {
                break;
            }
            iter.next();
        }
    }

    fn advance_to_valid_forward(&mut self) {
        loop {
            if self.current_entry_in_bounds() {
                return;
            }
            // Either the guard is exhausted or the next entry spills past the
            // guard's upper bound; move on to the following guard.
            let next = if self.index >= self.guards.len() {
                return;
            } else {
                self.index + 1
            };
            if next >= self.guards.len() {
                self.current = None;
                self.index = self.guards.len();
                return;
            }
            let result = self.open_guard(next);
            if !self.record_open_error(result) {
                return;
            }
            if let Some(iter) = self.current.as_mut() {
                iter.seek_to_first();
            }
            self.skip_below_lower_bound();
        }
    }

    fn retreat_to_valid_backward(&mut self) {
        loop {
            if self.current_entry_in_bounds() {
                return;
            }
            // If the current entry is merely above the upper bound, walk
            // backwards within the same guard first.
            if let Some(iter) = self.current.as_mut() {
                if iter.valid() {
                    let user_key = extract_user_key(iter.key()).to_vec();
                    if let Some(upper) = self.guard_bounds(self.index).1 {
                        if user_key.as_slice() >= upper {
                            self.current.as_mut().expect("checked").prev();
                            continue;
                        }
                    }
                }
            }
            if self.index == 0 {
                self.current = None;
                return;
            }
            let prev = if self.index >= self.guards.len() {
                self.guards.len() - 1
            } else {
                self.index - 1
            };
            let result = self.open_guard(prev);
            if !self.record_open_error(result) {
                return;
            }
            if let Some(iter) = self.current.as_mut() {
                iter.seek_to_last();
            }
        }
    }
}

impl DbIterator for GuardLevelIterator {
    fn valid(&self) -> bool {
        self.current.as_ref().map(|it| it.valid()).unwrap_or(false)
    }

    fn seek_to_first(&mut self) {
        if self.guards.is_empty() {
            self.current = None;
            return;
        }
        let result = self.open_guard(0);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek_to_first();
        }
        self.advance_to_valid_forward();
    }

    fn seek_to_last(&mut self) {
        if self.guards.is_empty() {
            self.current = None;
            return;
        }
        let last = self.guards.len() - 1;
        let result = self.open_guard(last);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek_to_last();
        }
        self.index = last;
        self.retreat_to_valid_backward();
    }

    fn seek(&mut self, target: &[u8]) {
        if self.guards.is_empty() {
            self.current = None;
            return;
        }
        let user_key = extract_user_key(target);
        let index = guard_index_for_key(&self.guard_keys, user_key);
        self.parallel_warm_guard(index, target);
        let result = self.open_guard(index);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek(target);
        }
        self.advance_to_valid_forward();
    }

    fn next(&mut self) {
        if let Some(iter) = self.current.as_mut() {
            iter.next();
        }
        self.advance_to_valid_forward();
    }

    fn prev(&mut self) {
        if let Some(iter) = self.current.as_mut() {
            iter.prev();
        }
        self.retreat_to_valid_backward();
    }

    fn key(&self) -> &[u8] {
        self.current.as_ref().expect("iterator not valid").key()
    }

    fn value(&self) -> &[u8] {
        self.current.as_ref().expect("iterator not valid").value()
    }

    fn status(&self) -> Result<()> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        match &self.current {
            Some(iter) => iter.status(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::filename::table_file_name;
    use pebblesdb_common::key::{encode_internal_key, InternalKey, ValueType};
    use pebblesdb_common::StoreOptions;
    use pebblesdb_engine::FileMetaData;
    use pebblesdb_env::{Env, MemEnv};
    use pebblesdb_sstable::TableBuilder;
    use std::path::{Path, PathBuf};

    fn build_file(
        env: &Arc<dyn Env>,
        db: &Path,
        options: &StoreOptions,
        number: u64,
        keys: &[(&str, u64)],
    ) -> Arc<FileMetaData> {
        let file = env.new_writable_file(&table_file_name(db, number)).unwrap();
        let mut builder = TableBuilder::new(options, file);
        let mut encoded: Vec<Vec<u8>> = keys
            .iter()
            .map(|(k, seq)| encode_internal_key(k.as_bytes(), *seq, ValueType::Value))
            .collect();
        encoded.sort_by(|a, b| pebblesdb_common::key::compare_internal_keys(a, b));
        for key in &encoded {
            builder.add(key, format!("v{number}").as_bytes()).unwrap();
        }
        let smallest = builder.first_key().unwrap().to_vec();
        let largest = builder.last_key().unwrap().to_vec();
        let size = builder.finish().unwrap();
        Arc::new(FileMetaData::new(
            number,
            size,
            InternalKey::from_encoded(smallest),
            InternalKey::from_encoded(largest),
        ))
    }

    fn setup() -> (Arc<TableCache>, Vec<GuardMeta>) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/guard-iter");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();

        // Sentinel guard: overlapping files covering a..e.
        let f1 = build_file(&env, &db, &options, 1, &[("a", 5), ("c", 5)]);
        let f2 = build_file(&env, &db, &options, 2, &[("b", 6), ("c", 6)]);
        // Guard "m": one file.
        let f3 = build_file(&env, &db, &options, 3, &[("m", 2), ("p", 2)]);
        // Guard "t": empty.

        let mut sentinel = GuardMeta::new(Vec::new());
        sentinel.files = vec![f2, f1];
        let mut guard_m = GuardMeta::new(b"m".to_vec());
        guard_m.files = vec![f3];
        let guard_t = GuardMeta::new(b"t".to_vec());

        let cache = Arc::new(TableCache::new(Arc::clone(&env), db, options, 16));
        (cache, vec![sentinel, guard_m, guard_t])
    }

    fn user_keys_forward(iter: &mut GuardLevelIterator) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        iter.seek_to_first();
        while iter.valid() {
            out.push((extract_user_key(iter.key()).to_vec(), iter.value().to_vec()));
            iter.next();
        }
        out
    }

    #[test]
    fn iterates_across_guards_and_merges_within_a_guard() {
        let (cache, guards) = setup();
        let mut iter = GuardLevelIterator::new(cache, ReadOptions::default(), guards);
        let entries = user_keys_forward(&mut iter);
        let keys: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        // "c" appears in both sentinel files (seq 6 newer than seq 5).
        assert_eq!(
            keys,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"c".to_vec(),
                b"m".to_vec(),
                b"p".to_vec()
            ]
        );
        // The newer "c" (from file 2) comes first.
        assert_eq!(entries[2].1, b"v2".to_vec());
        assert_eq!(entries[3].1, b"v1".to_vec());
    }

    #[test]
    fn seek_lands_in_the_owning_guard() {
        let (cache, guards) = setup();
        let mut iter = GuardLevelIterator::new(cache, ReadOptions::default(), guards);
        iter.seek(&encode_internal_key(b"n", u64::MAX >> 8, ValueType::Value));
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"p");

        // Seeking into the empty trailing guard yields nothing.
        iter.seek(&encode_internal_key(b"u", u64::MAX >> 8, ValueType::Value));
        assert!(!iter.valid());

        // Seeking before everything starts at the first key.
        iter.seek(&encode_internal_key(b"", u64::MAX >> 8, ValueType::Value));
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"a");
    }

    #[test]
    fn empty_guard_in_the_middle_is_skipped() {
        let (cache, mut guards) = setup();
        // Clear guard "m" so the level is sentinel + empty + empty.
        guards[1].files.clear();
        let mut iter = GuardLevelIterator::new(cache, ReadOptions::default(), guards);
        let entries = user_keys_forward(&mut iter);
        assert_eq!(entries.len(), 4);
        assert_eq!(entries.last().unwrap().0, b"c".to_vec());
    }

    #[test]
    fn reverse_iteration_walks_back_through_guards() {
        let (cache, guards) = setup();
        let mut iter = GuardLevelIterator::new(cache, ReadOptions::default(), guards);
        iter.seek_to_last();
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"p");
        iter.prev();
        assert_eq!(extract_user_key(iter.key()), b"m");
        iter.prev();
        // Crosses back into the sentinel guard.
        assert_eq!(extract_user_key(iter.key()), b"c");
    }
}
