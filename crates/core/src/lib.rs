//! # PebblesDB: a key-value store built on Fragmented Log-Structured Merge Trees
//!
//! This crate is a from-scratch Rust implementation of the system described
//! in *PebblesDB: Building Key-Value Stores using Fragmented Log-Structured
//! Merge Trees* (SOSP 2017). The FLSM data structure keeps the familiar
//! levelled layout of an LSM but organises every level with **guards**
//! (inspired by skip lists): guards partition a level's key space into
//! disjoint ranges, while the sstables *inside* a guard may overlap. When a
//! guard is compacted its sstables are merge-sorted and *fragmented* along
//! the next level's guards — new fragments are simply appended to the child
//! guards, and data already in the next level is never rewritten. That is
//! what removes the write amplification of classical LSM compaction.
//!
//! On top of the FLSM structure, PebblesDB layers the read-side techniques
//! from chapter 4 of the paper: sstable-level bloom filters, parallel seeks
//! on the last level, seek-triggered compaction and aggressive whole-level
//! compaction.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pebblesdb::PebblesDb;
//! use pebblesdb_common::KvStore;
//! use pebblesdb_env::MemEnv;
//!
//! let env = Arc::new(MemEnv::new());
//! let db = PebblesDb::open(env, std::path::Path::new("/db")).unwrap();
//! db.put(b"pebble", b"stone").unwrap();
//! assert_eq!(db.get(b"pebble").unwrap(), Some(b"stone".to_vec()));
//! let range = db.scan(b"a", b"z", 100).unwrap();
//! assert_eq!(range.len(), 1);
//! ```
//!
//! The store implements the shared [`KvStore`](pebblesdb_common::KvStore)
//! trait, so the YCSB runner, the application layers and the benchmark
//! harness drive it exactly as they drive the baseline LSM engine.

pub mod compaction;
pub mod db;
pub mod guards;
pub mod iter;
pub mod version;

pub use db::{FlsmPolicy, PebblesDb};
pub use guards::{GuardMeta, GuardPicker, UncommittedGuards};
pub use pebblesdb_common::{StoreOptions, StorePreset};
pub use version::{CompactionReason, FlsmVersion, FlsmVersionEdit, FlsmVersionSet};

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::{KvStore, WriteBatch};
    use pebblesdb_env::{DiskEnv, Env, MemEnv};
    use std::path::Path;
    use std::sync::Arc;

    fn small_options() -> StoreOptions {
        let mut opts = StoreOptions::default();
        opts.write_buffer_size = 32 << 10;
        opts.max_file_size = 16 << 10;
        opts.base_level_bytes = 64 << 10;
        opts.level0_compaction_trigger = 2;
        opts.level0_slowdown_writes_trigger = 4;
        opts.level0_stop_writes_trigger = 8;
        opts.max_sstables_per_guard = 4;
        opts.top_level_bits = 8;
        opts.bit_decrement = 1;
        opts
    }

    fn open_small(env: Arc<dyn Env>, path: &Path) -> PebblesDb {
        PebblesDb::open_with_options(env, path, small_options()).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    fn value(i: u32, len: usize) -> Vec<u8> {
        let mut v = format!("value{i:08}-").into_bytes();
        v.resize(len, b'x');
        v
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"missing").unwrap(), None);
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        db.put(b"a", b"3").unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"3".to_vec()));
        assert_eq!(db.engine_name(), "PebblesDB");
    }

    #[test]
    fn batched_writes_are_atomic() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        let mut batch = WriteBatch::new();
        batch.put(b"x", b"1");
        batch.delete(b"x");
        batch.put(b"y", b"2");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"x").unwrap(), None);
        assert_eq!(db.get(b"y").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn bulk_writes_build_guards_and_stay_readable() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(Arc::clone(&env), Path::new("/db"));
        let n = 4000u32;
        for i in 0..n {
            db.put(&key(i), &value(i, 100)).unwrap();
        }
        db.flush().unwrap();

        // Data must have reached deeper levels and guards must exist.
        let per_level = db.files_per_level();
        assert!(per_level.iter().skip(1).any(|&c| c > 0), "{per_level:?}");
        let guards = db.guards_per_level();
        assert!(
            guards.iter().skip(1).any(|&g| g > 1),
            "expected real guards beyond sentinels: {guards:?}"
        );

        for i in (0..n).step_by(41) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 100)), "key {i}");
        }
        let stats = db.stats();
        assert!(stats.compactions > 0);
        assert!(stats.write_amplification() > 1.0);
    }

    #[test]
    fn flsm_write_amplification_is_lower_than_baseline_lsm() {
        let n = 6000u32;
        let value_len = 128;

        let pebbles_env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let pebbles = open_small(Arc::clone(&pebbles_env), Path::new("/pebbles"));
        for i in 0..n {
            // Pseudo-random order to force overlap.
            let k = (i.wrapping_mul(2654435761)) % n;
            pebbles.put(&key(k), &value(k, value_len)).unwrap();
        }
        pebbles.flush().unwrap();
        let pebbles_amp = pebbles.stats().write_amplification();

        let lsm_env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let lsm = pebblesdb_lsm::LsmDb::open_with_options(
            Arc::clone(&lsm_env),
            Path::new("/lsm"),
            {
                let mut o = small_options();
                o.max_sstables_per_guard = 8;
                o
            },
            StorePreset::HyperLevelDb,
        )
        .unwrap();
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % n;
            lsm.put(&key(k), &value(k, value_len)).unwrap();
        }
        lsm.flush().unwrap();
        let lsm_amp = lsm.stats().write_amplification();

        assert!(
            pebbles_amp < lsm_amp,
            "FLSM write amplification ({pebbles_amp:.2}) should be below the LSM baseline ({lsm_amp:.2})"
        );
    }

    #[test]
    fn overwrites_and_deletes_survive_compaction() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for round in 0..3u32 {
            for i in 0..600u32 {
                db.put(&key(i), &value(i + round * 1000, 64)).unwrap();
            }
        }
        for i in (0..600).step_by(3) {
            db.delete(&key(i)).unwrap();
        }
        db.flush().unwrap();
        for i in 0..600u32 {
            let got = db.get(&key(i)).unwrap();
            if i % 3 == 0 {
                assert_eq!(got, None, "key {i} should be deleted");
            } else {
                assert_eq!(got, Some(value(i + 2000, 64)), "key {i}");
            }
        }
    }

    #[test]
    fn scans_cross_guard_boundaries_and_see_fresh_writes() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for i in 0..2000u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        db.flush().unwrap();
        db.put(&key(1000), b"fresh").unwrap();
        db.delete(&key(1001)).unwrap();

        let results = db.scan(&key(998), &key(1005), 100).unwrap();
        let keys: Vec<Vec<u8>> = results.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![
                key(998),
                key(999),
                key(1000),
                key(1002),
                key(1003),
                key(1004)
            ]
        );
        let map: std::collections::HashMap<_, _> = results.into_iter().collect();
        assert_eq!(map[&key(1000)], b"fresh".to_vec());

        // A long scan spanning many guards returns every live key in order.
        let results = db.scan(&key(0), &[], 2500).unwrap();
        assert_eq!(results.len(), 1999, "one key was deleted in the range");
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(!results.iter().any(|(k, _)| k == &key(1001)));
    }

    #[test]
    fn data_survives_reopen_including_guard_metadata() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let path = Path::new("/db");
        let guards_before;
        {
            let db = open_small(Arc::clone(&env), path);
            for i in 0..3000u32 {
                db.put(&key(i), &value(i, 64)).unwrap();
            }
            db.flush().unwrap();
            // More writes that stay in the WAL only.
            for i in 3000..3200u32 {
                db.put(&key(i), &value(i, 64)).unwrap();
            }
            guards_before = db.guards_per_level();
        }
        let db = open_small(Arc::clone(&env), path);
        for i in (0..3200).step_by(111) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
        }
        let guards_after = db.guards_per_level();
        assert_eq!(
            guards_before, guards_after,
            "guards must be recovered from the MANIFEST"
        );
    }

    #[test]
    fn crash_mid_wal_write_recovers_prefix() {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let path = Path::new("/db");
        {
            let db = open_small(Arc::clone(&env), path);
            for i in 0..200u32 {
                db.put(&key(i), &value(i, 64)).unwrap();
            }
            // Simulate a crash: truncate the live WAL by a few bytes.
            let children = env.children(path).unwrap();
            let wal = children
                .iter()
                .filter(|name| name.ends_with(".log"))
                .max()
                .cloned()
                .unwrap();
            let wal_path = path.join(&wal);
            let size = env.file_size(&wal_path).unwrap() as usize;
            mem_env
                .truncate_file(&wal_path, size.saturating_sub(5))
                .unwrap();
        }
        let db = open_small(env, path);
        // All but (at most) the torn tail record must be readable.
        for i in 0..195u32 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)), "key {i}");
        }
    }

    #[test]
    fn pebblesdb1_mode_degenerates_towards_lsm() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let mut opts = small_options();
        opts.max_sstables_per_guard = 1;
        let db = PebblesDb::open_with_options(env, Path::new("/db"), opts).unwrap();
        assert_eq!(db.engine_name(), "PebblesDB-1");
        for i in 0..1000u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        db.flush().unwrap();
        for i in (0..1000).step_by(29) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Arc::new(open_small(env, Path::new("/db")));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..600u32 {
                        let k = format!("t{t}-{i:06}");
                        db.put(k.as_bytes(), &[b'v'; 64]).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..600u32 {
                        let _ = db.get(format!("t0-{i:06}").as_bytes()).unwrap();
                        if i % 50 == 0 {
                            let _ = db.scan(b"t0-", b"t0-~", 20).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.get(b"t1-000599").unwrap(), Some(vec![b'v'; 64]));
    }

    #[test]
    fn empty_guards_do_not_break_reads() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        // Insert one key range, delete it, then use a different range —
        // guards from the first range become empty (Figure 5.4 scenario).
        for i in 0..1500u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        db.flush().unwrap();
        for i in 0..1500u32 {
            db.delete(&key(i)).unwrap();
        }
        db.flush().unwrap();
        for i in 10_000..11_500u32 {
            db.put(&key(i), &value(i, 64)).unwrap();
        }
        db.flush().unwrap();
        for i in (10_000..11_500).step_by(73) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 64)));
        }
        for i in (0..1500).step_by(97) {
            assert_eq!(db.get(&key(i)).unwrap(), None);
        }
    }

    #[test]
    fn disk_env_end_to_end() {
        let dir = std::env::temp_dir().join(format!("pebbles-core-disk-{}", std::process::id()));
        let env_concrete = DiskEnv::new();
        let _ = env_concrete.remove_dir_all(&dir);
        let env: Arc<dyn Env> = Arc::new(env_concrete.clone());
        {
            let db = open_small(Arc::clone(&env), &dir);
            for i in 0..800u32 {
                db.put(&key(i), &value(i, 128)).unwrap();
            }
            db.flush().unwrap();
        }
        {
            let db = open_small(Arc::clone(&env), &dir);
            for i in (0..800).step_by(17) {
                assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 128)));
            }
        }
        env_concrete.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_file_sizes_are_reported() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open_small(env, Path::new("/db"));
        for i in 0..500u32 {
            db.put(&key(i), &value(i, 100)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert!(stats.user_bytes_written >= 500 * 100);
        assert!(stats.disk_bytes_live > 0);
        assert!(stats.num_files > 0);
        assert_eq!(stats.num_files as usize, db.live_file_sizes().len());
        assert!(stats.memory_usage_bytes > 0);
        assert!(stats.gets == 0);
        let _ = db.get(&key(1)).unwrap();
        assert_eq!(db.stats().gets, 1);
    }
}
