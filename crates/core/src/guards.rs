//! Guards: the FLSM mechanism that organises overlapping sstables.
//!
//! A guard at level `i` is a user key that divides that level's key space.
//! All sstables whose keys fall in `[guard, next_guard)` hang off the guard;
//! guards never overlap, so a `get()` inspects exactly one guard per level,
//! but the sstables *inside* a guard may overlap freely — which is what lets
//! FLSM compaction append fragments instead of rewriting data (chapter 3 of
//! the paper).
//!
//! Guard keys are chosen probabilistically from inserted keys by hashing them
//! with MurmurHash3 and counting trailing set bits, exactly as described in
//! section 4.4 of the paper: a key whose hash ends in `top_level_bits`
//! consecutive ones becomes a guard at level 1 (and therefore at every deeper
//! level); each level deeper relaxes the requirement by `bit_decrement` bits,
//! so deeper levels have exponentially more guards — the skip-list shape.

use std::collections::BTreeSet;
use std::sync::Arc;

use pebblesdb_common::hash::murmur3_32;
use pebblesdb_common::StoreOptions;
use pebblesdb_engine::FileMetaData;

/// Seed used for guard-selection hashing (fixed so guard placement is stable
/// across restarts).
const GUARD_HASH_SEED: u32 = 0x9747_b28c;

/// Decides at which level (if any) an inserted key becomes a guard.
#[derive(Debug, Clone)]
pub struct GuardPicker {
    top_level_bits: u32,
    bit_decrement: u32,
    max_levels: usize,
}

impl GuardPicker {
    /// Creates a picker from the store options.
    pub fn new(options: &StoreOptions) -> Self {
        GuardPicker {
            top_level_bits: options.top_level_bits,
            bit_decrement: options.bit_decrement,
            max_levels: options.max_levels,
        }
    }

    /// Number of trailing set bits required to be a guard at `level`
    /// (levels are 1-based; level 0 has no guards).
    pub fn required_bits(&self, level: usize) -> u32 {
        let relax = self.bit_decrement * (level.saturating_sub(1)) as u32;
        self.top_level_bits.saturating_sub(relax).max(1)
    }

    /// Returns the topmost (smallest-numbered) level at which `key` is a
    /// guard, or `None` if it is not a guard anywhere.
    ///
    /// Because required bits shrink with depth, a key that is a guard at
    /// level `i` is automatically a guard at every level `> i`.
    pub fn guard_level(&self, key: &[u8]) -> Option<usize> {
        let ones = murmur3_32(key, GUARD_HASH_SEED).trailing_ones();
        (1..self.max_levels).find(|&level| ones >= self.required_bits(level))
    }
}

/// A guard and the sstables currently attached to it.
#[derive(Debug, Clone, Default)]
pub struct GuardMeta {
    /// The guard key (user key). The sentinel guard has an empty key and
    /// holds every sstable smaller than the first real guard.
    pub key: Vec<u8>,
    /// Sstables attached to this guard, newest first (descending file
    /// number). Their key ranges may overlap.
    pub files: Vec<Arc<FileMetaData>>,
}

impl GuardMeta {
    /// Creates an empty guard for `key`.
    pub fn new(key: Vec<u8>) -> Self {
        GuardMeta {
            key,
            files: Vec::new(),
        }
    }

    /// Returns `true` if this is the sentinel guard.
    pub fn is_sentinel(&self) -> bool {
        self.key.is_empty()
    }

    /// Total bytes stored under this guard.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.file_size).sum()
    }
}

/// Guards chosen but not yet applied to the on-disk layout.
///
/// Section 3.3 of the paper: new guards are collected in memory and only take
/// effect (and are persisted) at the next compaction into their level, so
/// reads never have to consider half-applied guards.
#[derive(Debug, Default, Clone)]
pub struct UncommittedGuards {
    /// `per_level[level]` holds the guard keys waiting to be committed.
    per_level: Vec<BTreeSet<Vec<u8>>>,
}

impl UncommittedGuards {
    /// Creates empty sets for `levels` levels.
    pub fn new(levels: usize) -> Self {
        UncommittedGuards {
            per_level: vec![BTreeSet::new(); levels],
        }
    }

    /// Records `key` as a guard at `level` and every deeper level.
    pub fn add(&mut self, level: usize, key: &[u8]) {
        for set in self.per_level.iter_mut().skip(level) {
            set.insert(key.to_vec());
        }
    }

    /// The pending guard keys for `level`.
    pub fn for_level(&self, level: usize) -> &BTreeSet<Vec<u8>> {
        &self.per_level[level]
    }

    /// Removes (and returns) the pending guards for `level`, typically after
    /// they have been committed by a compaction.
    pub fn take_level(&mut self, level: usize) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.per_level[level])
            .into_iter()
            .collect()
    }

    /// Removes exactly `keys` from `level`'s pending set.
    ///
    /// Used when a compaction commits the guard keys it snapshotted at build
    /// time: guards picked by writers *while the compaction IO ran* must stay
    /// pending for the next compaction into the level, so a blanket
    /// [`UncommittedGuards::take_level`] would silently drop them.
    pub fn remove_committed(&mut self, level: usize, keys: &[Vec<u8>]) {
        for key in keys {
            self.per_level[level].remove(key);
        }
    }

    /// Total number of pending guard keys across all levels.
    pub fn len(&self) -> usize {
        self.per_level.iter().map(|s| s.len()).sum()
    }

    /// Returns `true` if no guards are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Given the sorted guard keys of a level, returns the index of the guard
/// that owns `user_key` (0 = sentinel).
///
/// `guard_keys` must be sorted and must *not* include the sentinel.
pub fn guard_index_for_key(guard_keys: &[Vec<u8>], user_key: &[u8]) -> usize {
    // partition_point returns the number of guards with key <= user_key,
    // which is exactly the 1-based guard slot; slot 0 is the sentinel.
    guard_keys.partition_point(|g| g.as_slice() <= user_key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn picker(top: u32, dec: u32, levels: usize) -> GuardPicker {
        let mut opts = StoreOptions::default();
        opts.top_level_bits = top;
        opts.bit_decrement = dec;
        opts.max_levels = levels;
        GuardPicker::new(&opts)
    }

    #[test]
    fn required_bits_relax_with_depth_but_never_hit_zero() {
        let p = picker(10, 2, 7);
        assert_eq!(p.required_bits(1), 10);
        assert_eq!(p.required_bits(2), 8);
        assert_eq!(p.required_bits(3), 6);
        assert_eq!(p.required_bits(6), 1);
        assert!(p.required_bits(100) >= 1);
    }

    #[test]
    fn guard_levels_form_a_skip_list_distribution() {
        let p = picker(12, 2, 7);
        let n = 200_000u32;
        let mut counts = [0usize; 7];
        for i in 0..n {
            let key = format!("user-key-{i:09}");
            if let Some(level) = p.guard_level(key.as_bytes()) {
                counts[level] += 1;
            }
        }
        // Deeper levels must have (roughly exponentially) more guards.
        let deep: usize = counts[6];
        let mid: usize = counts[4];
        let shallow: usize = counts[1] + counts[2];
        assert!(deep > mid, "deep={deep} mid={mid}");
        assert!(mid > shallow, "mid={mid} shallow={shallow}");
        // A key that is a guard at level i is a guard at all deeper levels by
        // construction: `guard_level` returns the topmost level.
        let total: usize = counts.iter().sum();
        // With 12 bits at the top and decrement 2, level-6 guards need 2 bits
        // => roughly 1/4 of keys are guards somewhere.
        assert!(
            total > n as usize / 8 && total < n as usize / 2,
            "total={total}"
        );
    }

    #[test]
    fn guard_selection_is_deterministic() {
        let p = picker(8, 2, 7);
        for i in 0..1000 {
            let key = format!("key{i}");
            assert_eq!(p.guard_level(key.as_bytes()), p.guard_level(key.as_bytes()));
        }
    }

    #[test]
    fn uncommitted_guards_propagate_to_deeper_levels() {
        let mut pending = UncommittedGuards::new(7);
        pending.add(3, b"guard-a");
        assert!(pending.for_level(3).contains(&b"guard-a".to_vec()));
        assert!(pending.for_level(5).contains(&b"guard-a".to_vec()));
        assert!(!pending.for_level(2).contains(&b"guard-a".to_vec()));
        assert_eq!(pending.len(), 4); // Levels 3, 4, 5, 6.

        let taken = pending.take_level(4);
        assert_eq!(taken, vec![b"guard-a".to_vec()]);
        assert!(pending.for_level(4).is_empty());
        assert!(!pending.is_empty());
    }

    #[test]
    fn removing_committed_guards_keeps_later_arrivals_pending() {
        let mut pending = UncommittedGuards::new(4);
        pending.add(2, b"early");
        let snapshot: Vec<Vec<u8>> = pending.for_level(2).iter().cloned().collect();
        // A writer picks another guard while the compaction IO runs.
        pending.add(2, b"late");
        pending.remove_committed(2, &snapshot);
        assert!(!pending.for_level(2).contains(&b"early".to_vec()));
        assert!(pending.for_level(2).contains(&b"late".to_vec()));
        // Deeper levels are untouched until their own compaction commits.
        assert!(pending.for_level(3).contains(&b"early".to_vec()));
    }

    #[test]
    fn guard_index_assignment_matches_ranges() {
        let guards = vec![b"f".to_vec(), b"m".to_vec(), b"t".to_vec()];
        assert_eq!(guard_index_for_key(&guards, b"a"), 0); // Sentinel.
        assert_eq!(guard_index_for_key(&guards, b"f"), 1); // Guard key itself.
        assert_eq!(guard_index_for_key(&guards, b"g"), 1);
        assert_eq!(guard_index_for_key(&guards, b"m"), 2);
        assert_eq!(guard_index_for_key(&guards, b"s"), 2);
        assert_eq!(guard_index_for_key(&guards, b"z"), 3);
        assert_eq!(guard_index_for_key(&[], b"anything"), 0);
    }

    #[test]
    fn sentinel_guard_is_recognised() {
        let sentinel = GuardMeta::new(Vec::new());
        assert!(sentinel.is_sentinel());
        let named = GuardMeta::new(b"k".to_vec());
        assert!(!named.is_sentinel());
        assert_eq!(named.total_bytes(), 0);
    }
}
