//! The page cache (buffer pool) backing the B+Tree.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use pebblesdb_common::Result;
use pebblesdb_env::{Env, RandomWritableFile};

use crate::PAGE_SIZE;

struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// Reads, writes and caches fixed-size pages of a single file.
///
/// Dirty pages are written back when they are evicted or when
/// [`Pager::checkpoint`] is called — evictions are where the B+Tree's write
/// amplification comes from, since a page is rewritten whole no matter how
/// small the logical change was.
pub struct Pager {
    file: Arc<dyn RandomWritableFile>,
    cache: HashMap<u32, CachedPage>,
    capacity_pages: usize,
    clock: u64,
    num_pages: u32,
    pages_written: u64,
    pages_read: u64,
}

impl Pager {
    /// Opens (or creates) the page file at `path`.
    pub fn open(env: &dyn Env, path: &Path, cache_bytes: usize) -> Result<Pager> {
        let file = env.new_random_writable_file(path)?;
        let len = file.len()?;
        let num_pages = (len as usize / PAGE_SIZE) as u32;
        Ok(Pager {
            file,
            cache: HashMap::new(),
            capacity_pages: (cache_bytes / PAGE_SIZE).max(16),
            clock: 0,
            num_pages,
            pages_written: 0,
            pages_read: 0,
        })
    }

    /// Number of pages the file currently holds.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Number of whole pages written back to the file so far.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Number of whole pages read from the file so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Approximate memory used by cached pages.
    pub fn memory_usage(&self) -> usize {
        self.cache.len() * PAGE_SIZE
    }

    /// Allocates a fresh, zeroed page and returns its id.
    pub fn allocate(&mut self) -> u32 {
        let id = self.num_pages;
        self.num_pages += 1;
        self.clock += 1;
        self.cache.insert(
            id,
            CachedPage {
                data: vec![0u8; PAGE_SIZE],
                dirty: true,
                last_used: self.clock,
            },
        );
        id
    }

    /// Returns a copy of the page contents.
    pub fn read_page(&mut self, id: u32) -> Result<Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(page) = self.cache.get_mut(&id) {
            page.last_used = clock;
            return Ok(page.data.clone());
        }
        let data = self
            .file
            .read_at(u64::from(id) * PAGE_SIZE as u64, PAGE_SIZE)?;
        let mut data = data;
        data.resize(PAGE_SIZE, 0);
        self.pages_read += 1;
        self.cache.insert(
            id,
            CachedPage {
                data: data.clone(),
                dirty: false,
                last_used: clock,
            },
        );
        self.evict_if_needed()?;
        Ok(data)
    }

    /// Replaces the contents of a page.
    pub fn write_page(&mut self, id: u32, data: Vec<u8>) -> Result<()> {
        debug_assert!(data.len() <= PAGE_SIZE);
        let mut data = data;
        data.resize(PAGE_SIZE, 0);
        self.clock += 1;
        let clock = self.clock;
        self.cache.insert(
            id,
            CachedPage {
                data,
                dirty: true,
                last_used: clock,
            },
        );
        self.evict_if_needed()
    }

    /// Writes every dirty page back and syncs the file.
    pub fn checkpoint(&mut self) -> Result<()> {
        let mut dirty_ids: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(id, _)| *id)
            .collect();
        dirty_ids.sort_unstable();
        for id in dirty_ids {
            self.flush_page(id)?;
        }
        self.file.sync()
    }

    fn flush_page(&mut self, id: u32) -> Result<()> {
        if let Some(page) = self.cache.get_mut(&id) {
            if page.dirty {
                self.file
                    .write_at(u64::from(id) * PAGE_SIZE as u64, &page.data)?;
                page.dirty = false;
                self.pages_written += 1;
            }
        }
        Ok(())
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        while self.cache.len() > self.capacity_pages {
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            self.flush_page(victim)?;
            self.cache.remove(&victim);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::MemEnv;

    #[test]
    fn pages_roundtrip_through_cache_and_file() {
        let env = MemEnv::new();
        let mut pager = Pager::open(&env, Path::new("/pages"), 64 * PAGE_SIZE).unwrap();
        let a = pager.allocate();
        let b = pager.allocate();
        assert_eq!(pager.num_pages(), 2);

        let mut page_a = vec![0u8; PAGE_SIZE];
        page_a[..5].copy_from_slice(b"hello");
        pager.write_page(a, page_a.clone()).unwrap();
        pager.write_page(b, vec![7u8; PAGE_SIZE]).unwrap();
        pager.checkpoint().unwrap();

        // Reopen and read back from the file.
        let mut pager2 = Pager::open(&env, Path::new("/pages"), 64 * PAGE_SIZE).unwrap();
        assert_eq!(pager2.num_pages(), 2);
        assert_eq!(&pager2.read_page(a).unwrap()[..5], b"hello");
        assert_eq!(pager2.read_page(b).unwrap()[0], 7);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let env = MemEnv::new();
        // Capacity floor is 16 pages.
        let mut pager = Pager::open(&env, Path::new("/small"), PAGE_SIZE).unwrap();
        for _ in 0..40 {
            let id = pager.allocate();
            pager.write_page(id, vec![id as u8; PAGE_SIZE]).unwrap();
        }
        assert!(pager.memory_usage() <= 17 * PAGE_SIZE);
        assert!(pager.pages_written() > 0);
        // Evicted pages are still readable from the file.
        assert_eq!(pager.read_page(0).unwrap()[0], 0);
        assert_eq!(pager.read_page(5).unwrap()[0], 5);
    }
}
