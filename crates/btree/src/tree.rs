//! The B+Tree store: tree operations over the pager, plus the [`KvStore`]
//! implementation used by the benchmark harness.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::btree_pages_file_name;
use pebblesdb_common::{Error, KvStore, Result, StoreOptions, StoreStats, WriteBatch};
use pebblesdb_common::key::ValueType;
use pebblesdb_env::Env;

use crate::node::{Node, NO_PAGE};
use crate::pager::Pager;
use crate::PAGE_SIZE;

/// Magic number stored in the meta page.
const META_MAGIC: u64 = 0x6274_7265_655f_7067; // "btree_pg"
/// Checkpoint after this many dirty operations (models a store that batches
/// page write-back, like WiredTiger's periodic checkpoints).
const CHECKPOINT_EVERY: u64 = 256;

struct TreeInner {
    pager: Pager,
    root: u32,
    ops_since_checkpoint: u64,
}

/// A persistent B+Tree key-value store.
pub struct BTreeStore {
    env: Arc<dyn Env>,
    inner: Mutex<TreeInner>,
    counters: EngineCounters,
}

impl BTreeStore {
    /// Opens (creating if necessary) the store at `path`.
    pub fn open(env: Arc<dyn Env>, path: &Path, options: StoreOptions) -> Result<BTreeStore> {
        env.create_dir_all(path)?;
        let pages_path = btree_pages_file_name(path, 1);
        let mut pager = Pager::open(env.as_ref(), &pages_path, options.block_cache_capacity)?;

        let root = if pager.num_pages() == 0 {
            // Fresh store: page 0 is the meta page, page 1 the empty root.
            let meta = pager.allocate();
            debug_assert_eq!(meta, 0);
            let root = pager.allocate();
            pager.write_page(root, Node::empty_leaf().encode()?)?;
            let mut tree = TreeInner {
                pager,
                root,
                ops_since_checkpoint: 0,
            };
            Self::write_meta(&mut tree)?;
            tree.pager.checkpoint()?;
            return Ok(BTreeStore {
                env,
                inner: Mutex::new(tree),
                counters: EngineCounters::new(),
            });
        } else {
            let meta = pager.read_page(0)?;
            let magic = u64::from_le_bytes(meta[..8].try_into().expect("meta page"));
            if magic != META_MAGIC {
                return Err(Error::corruption("bad b+tree meta page"));
            }
            u32::from_le_bytes(meta[8..12].try_into().expect("meta page"))
        };

        Ok(BTreeStore {
            env,
            inner: Mutex::new(TreeInner {
                pager,
                root,
                ops_since_checkpoint: 0,
            }),
            counters: EngineCounters::new(),
        })
    }

    fn write_meta(tree: &mut TreeInner) -> Result<()> {
        let mut meta = vec![0u8; PAGE_SIZE];
        meta[..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        meta[8..12].copy_from_slice(&tree.root.to_le_bytes());
        tree.pager.write_page(0, meta)
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.inner.lock().pager.num_pages()
    }

    fn insert_entry(&self, tree: &mut TreeInner, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() + value.len() + 64 > PAGE_SIZE {
            return Err(Error::invalid_argument(
                "entry too large for a b+tree page",
            ));
        }
        let root = tree.root;
        if let Some((split_key, right_page)) = Self::insert_recursive(tree, root, key, value)? {
            // The root split: grow the tree by one level.
            let new_root = tree.pager.allocate();
            let node = Node::Internal {
                keys: vec![split_key],
                children: vec![root, right_page],
            };
            tree.pager.write_page(new_root, node.encode()?)?;
            tree.root = new_root;
            Self::write_meta(tree)?;
        }
        Ok(())
    }

    /// Inserts into the subtree rooted at `page`, returning the promoted key
    /// and new right sibling if the node split.
    fn insert_recursive(
        tree: &mut TreeInner,
        page: u32,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<(Vec<u8>, u32)>> {
        let node = Node::decode(&tree.pager.read_page(page)?)?;
        match node {
            Node::Leaf {
                mut entries,
                next_leaf,
            } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(idx) => entries[idx].1 = value.to_vec(),
                    Err(idx) => entries.insert(idx, (key.to_vec(), value.to_vec())),
                }
                let node = Node::Leaf { entries, next_leaf };
                if !node.overflows() {
                    tree.pager.write_page(page, node.encode()?)?;
                    return Ok(None);
                }
                // Split the leaf in half; the right half moves to a new page.
                let Node::Leaf { entries, next_leaf } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let split_key = right_entries[0].0.clone();
                let right_page = tree.pager.allocate();
                tree.pager.write_page(
                    right_page,
                    Node::Leaf {
                        entries: right_entries,
                        next_leaf,
                    }
                    .encode()?,
                )?;
                tree.pager.write_page(
                    page,
                    Node::Leaf {
                        entries: left_entries,
                        next_leaf: right_page,
                    }
                    .encode()?,
                )?;
                Ok(Some((split_key, right_page)))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                if let Some((split_key, right_page)) =
                    Self::insert_recursive(tree, child, key, value)?
                {
                    keys.insert(idx, split_key);
                    children.insert(idx + 1, right_page);
                }
                let node = Node::Internal { keys, children };
                if !node.overflows() {
                    tree.pager.write_page(page, node.encode()?)?;
                    return Ok(None);
                }
                let Node::Internal { keys, children } = node else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let promote = keys[mid].clone();
                let right_keys = keys[mid + 1..].to_vec();
                let right_children = children[mid + 1..].to_vec();
                let left_keys = keys[..mid].to_vec();
                let left_children = children[..mid + 1].to_vec();
                let right_page = tree.pager.allocate();
                tree.pager.write_page(
                    right_page,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }
                    .encode()?,
                )?;
                tree.pager.write_page(
                    page,
                    Node::Internal {
                        keys: left_keys,
                        children: left_children,
                    }
                    .encode()?,
                )?;
                Ok(Some((promote, right_page)))
            }
        }
    }

    /// Finds the leaf page that would contain `key`.
    fn find_leaf(tree: &mut TreeInner, key: &[u8]) -> Result<u32> {
        let mut page = tree.root;
        loop {
            let node = Node::decode(&tree.pager.read_page(page)?)?;
            match node {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
            }
        }
    }

    fn maybe_checkpoint(&self, tree: &mut TreeInner) -> Result<()> {
        tree.ops_since_checkpoint += 1;
        if tree.ops_since_checkpoint >= CHECKPOINT_EVERY {
            tree.ops_since_checkpoint = 0;
            tree.pager.checkpoint()?;
        }
        Ok(())
    }
}

impl KvStore for BTreeStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut tree = self.inner.lock();
        self.insert_entry(&mut tree, key, value)?;
        self.counters.add_user_bytes((key.len() + value.len()) as u64);
        self.maybe_checkpoint(&mut tree)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let mut tree = self.inner.lock();
        let leaf = Self::find_leaf(&mut tree, key)?;
        let node = Node::decode(&tree.pager.read_page(leaf)?)?;
        let Node::Leaf { entries, .. } = node else {
            return Err(Error::corruption("expected leaf page"));
        };
        Ok(entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| entries[idx].1.clone()))
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        let mut tree = self.inner.lock();
        let leaf = Self::find_leaf(&mut tree, key)?;
        let node = Node::decode(&tree.pager.read_page(leaf)?)?;
        let Node::Leaf {
            mut entries,
            next_leaf,
        } = node
        else {
            return Err(Error::corruption("expected leaf page"));
        };
        if let Ok(idx) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            entries.remove(idx);
            tree.pager
                .write_page(leaf, Node::Leaf { entries, next_leaf }.encode()?)?;
        }
        self.counters.add_user_bytes(key.len() as u64);
        self.maybe_checkpoint(&mut tree)
    }

    fn write(&self, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                ValueType::Value => self.put(record.key, record.value)?,
                ValueType::Deletion => self.delete(record.key)?,
            }
        }
        Ok(())
    }

    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.counters.record_seek();
        let mut tree = self.inner.lock();
        let mut out = Vec::new();
        let mut page = Self::find_leaf(&mut tree, start)?;
        loop {
            let node = Node::decode(&tree.pager.read_page(page)?)?;
            let Node::Leaf { entries, next_leaf } = node else {
                return Err(Error::corruption("expected leaf page"));
            };
            for (key, value) in entries {
                if key.as_slice() < start {
                    continue;
                }
                if !end.is_empty() && key.as_slice() >= end {
                    return Ok(out);
                }
                out.push((key, value));
                if out.len() >= limit {
                    return Ok(out);
                }
            }
            if next_leaf == NO_PAGE {
                return Ok(out);
            }
            page = next_leaf;
        }
    }

    fn flush(&self) -> Result<()> {
        let mut tree = self.inner.lock();
        tree.ops_since_checkpoint = 0;
        tree.pager.checkpoint()
    }

    fn stats(&self) -> StoreStats {
        let io = self.env.io_stats().snapshot();
        let tree = self.inner.lock();
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live: u64::from(tree.pager.num_pages()) * PAGE_SIZE as u64,
            num_files: 1,
            compactions: 0,
            compaction_micros: 0,
            compaction_bytes_read: tree.pager.pages_read() * PAGE_SIZE as u64,
            compaction_bytes_written: tree.pager.pages_written() * PAGE_SIZE as u64,
            memory_usage_bytes: tree.pager.memory_usage() as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: 0,
        }
    }

    fn engine_name(&self) -> String {
        "BTree".to_string()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        vec![u64::from(self.num_pages()) * PAGE_SIZE as u64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::MemEnv;

    #[test]
    fn sequential_and_reverse_inserts_balance() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        for i in 0..1000u32 {
            db.put(format!("a{i:06}").as_bytes(), b"1").unwrap();
        }
        for i in (0..1000u32).rev() {
            db.put(format!("z{i:06}").as_bytes(), b"2").unwrap();
        }
        assert_eq!(db.get(b"a000500").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"z000500").unwrap(), Some(b"2".to_vec()));
        assert!(db.num_pages() > 4);
    }

    #[test]
    fn batch_writes_apply_in_order() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v1");
        batch.put(b"k", b"v2");
        batch.delete(b"gone");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
    }
}
