//! The B+Tree store: tree operations over the pager, plus the [`KvStore`]
//! implementation used by the benchmark harness.
//!
//! The store is sequence-number versioned like the LSM engines: every write
//! bumps a sequence counter, [`KvStore::snapshot`] pins one, and while any
//! snapshot is live the write path keeps a copy-on-write *undo log* — the
//! value each key held before it was overwritten or deleted, tagged with the
//! sequence of the superseding write. Snapshot reads resolve a key by
//! looking for the earliest undo record newer than the snapshot; absent one,
//! the live tree value was already current at the snapshot. When the last
//! snapshot drops, the undo log is discarded — the RAII release the shared
//! store API promises.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::btree_pages_file_name;
use pebblesdb_common::key::ValueType;
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::{
    DbIterator, Error, KvStore, ReadOptions, Result, StoreOptions, StoreStats, WriteBatch,
    WriteOptions,
};
use pebblesdb_env::Env;

use crate::node::{Node, NO_PAGE};
use crate::pager::Pager;
use crate::PAGE_SIZE;

/// Magic number stored in the meta page.
const META_MAGIC: u64 = 0x6274_7265_655f_7067; // "btree_pg"
/// Checkpoint after this many dirty operations (models a store that batches
/// page write-back, like WiredTiger's periodic checkpoints).
const CHECKPOINT_EVERY: u64 = 256;

/// The pre-image a write displaced: `None` means the key did not exist.
type UndoVersion = (u64, Option<Vec<u8>>);
/// Decoded `(key, value)` entries of one leaf page.
type LeafEntries = Vec<(Vec<u8>, Vec<u8>)>;

struct TreeInner {
    pager: Pager,
    root: u32,
    ops_since_checkpoint: u64,
    /// Sequence of the most recent write (in-memory; snapshots do not
    /// survive a reopen).
    last_sequence: u64,
    /// Per-key pre-images kept while snapshots are live: `(valid_before,
    /// old value)` — the key held `old value` for every sequence `<
    /// valid_before`. Cleared when the last snapshot drops.
    undo: BTreeMap<Vec<u8>, Vec<UndoVersion>>,
}

impl TreeInner {
    /// The value of `key` visible at `snapshot_seq`, given the current live
    /// value.
    fn resolve_at(&self, key: &[u8], live: Option<Vec<u8>>, snapshot_seq: u64) -> Option<Vec<u8>> {
        if let Some(versions) = self.undo.get(key) {
            // The earliest write *after* the snapshot displaced the value
            // the snapshot saw.
            let mut best: Option<&UndoVersion> = None;
            for version in versions {
                if version.0 > snapshot_seq && best.map(|b| version.0 < b.0).unwrap_or(true) {
                    best = Some(version);
                }
            }
            if let Some((_, old_value)) = best {
                return old_value.clone();
            }
        }
        live
    }

    /// Records the pre-image of `key` before a write at `new_seq`.
    fn record_undo(&mut self, key: &[u8], old_value: Option<Vec<u8>>, new_seq: u64) {
        self.undo
            .entry(key.to_vec())
            .or_default()
            .push((new_seq, old_value));
    }
}

/// A persistent B+Tree key-value store.
pub struct BTreeStore {
    env: Arc<dyn Env>,
    inner: Arc<Mutex<TreeInner>>,
    counters: EngineCounters,
    snapshots: Arc<SnapshotList>,
}

impl BTreeStore {
    /// Opens (creating if necessary) the store at `path`.
    pub fn open(env: Arc<dyn Env>, path: &Path, options: StoreOptions) -> Result<BTreeStore> {
        env.create_dir_all(path)?;
        let pages_path = btree_pages_file_name(path, 1);
        let mut pager = Pager::open(env.as_ref(), &pages_path, options.block_cache_capacity)?;

        let root = if pager.num_pages() == 0 {
            // Fresh store: page 0 is the meta page, page 1 the empty root.
            let meta = pager.allocate();
            debug_assert_eq!(meta, 0);
            let root = pager.allocate();
            pager.write_page(root, Node::empty_leaf().encode()?)?;
            let mut tree = TreeInner {
                pager,
                root,
                ops_since_checkpoint: 0,
                last_sequence: 0,
                undo: BTreeMap::new(),
            };
            Self::write_meta(&mut tree)?;
            tree.pager.checkpoint()?;
            return Ok(BTreeStore {
                env,
                inner: Arc::new(Mutex::new(tree)),
                counters: EngineCounters::new(),
                snapshots: SnapshotList::new(),
            });
        } else {
            let meta = pager.read_page(0)?;
            let magic = u64::from_le_bytes(meta[..8].try_into().expect("meta page"));
            if magic != META_MAGIC {
                return Err(Error::corruption("bad b+tree meta page"));
            }
            u32::from_le_bytes(meta[8..12].try_into().expect("meta page"))
        };

        Ok(BTreeStore {
            env,
            inner: Arc::new(Mutex::new(TreeInner {
                pager,
                root,
                ops_since_checkpoint: 0,
                last_sequence: 0,
                undo: BTreeMap::new(),
            })),
            counters: EngineCounters::new(),
            snapshots: SnapshotList::new(),
        })
    }

    fn write_meta(tree: &mut TreeInner) -> Result<()> {
        let mut meta = vec![0u8; PAGE_SIZE];
        meta[..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        meta[8..12].copy_from_slice(&tree.root.to_le_bytes());
        tree.pager.write_page(0, meta)
    }

    /// Number of pages in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.inner.lock().pager.num_pages()
    }

    fn insert_entry(&self, tree: &mut TreeInner, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() + value.len() + 64 > PAGE_SIZE {
            return Err(Error::invalid_argument("entry too large for a b+tree page"));
        }
        let root = tree.root;
        if let Some((split_key, right_page)) = Self::insert_recursive(tree, root, key, value)? {
            // The root split: grow the tree by one level.
            let new_root = tree.pager.allocate();
            let node = Node::Internal {
                keys: vec![split_key],
                children: vec![root, right_page],
            };
            tree.pager.write_page(new_root, node.encode()?)?;
            tree.root = new_root;
            Self::write_meta(tree)?;
        }
        Ok(())
    }

    /// Inserts into the subtree rooted at `page`, returning the promoted key
    /// and new right sibling if the node split.
    fn insert_recursive(
        tree: &mut TreeInner,
        page: u32,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<(Vec<u8>, u32)>> {
        let node = Node::decode(&tree.pager.read_page(page)?)?;
        match node {
            Node::Leaf {
                mut entries,
                next_leaf,
            } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(idx) => entries[idx].1 = value.to_vec(),
                    Err(idx) => entries.insert(idx, (key.to_vec(), value.to_vec())),
                }
                let node = Node::Leaf { entries, next_leaf };
                if !node.overflows() {
                    tree.pager.write_page(page, node.encode()?)?;
                    return Ok(None);
                }
                // Split the leaf in half; the right half moves to a new page.
                let Node::Leaf { entries, next_leaf } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let split_key = right_entries[0].0.clone();
                let right_page = tree.pager.allocate();
                tree.pager.write_page(
                    right_page,
                    Node::Leaf {
                        entries: right_entries,
                        next_leaf,
                    }
                    .encode()?,
                )?;
                tree.pager.write_page(
                    page,
                    Node::Leaf {
                        entries: left_entries,
                        next_leaf: right_page,
                    }
                    .encode()?,
                )?;
                Ok(Some((split_key, right_page)))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                if let Some((split_key, right_page)) =
                    Self::insert_recursive(tree, child, key, value)?
                {
                    keys.insert(idx, split_key);
                    children.insert(idx + 1, right_page);
                }
                let node = Node::Internal { keys, children };
                if !node.overflows() {
                    tree.pager.write_page(page, node.encode()?)?;
                    return Ok(None);
                }
                let Node::Internal { keys, children } = node else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let promote = keys[mid].clone();
                let right_keys = keys[mid + 1..].to_vec();
                let right_children = children[mid + 1..].to_vec();
                let left_keys = keys[..mid].to_vec();
                let left_children = children[..mid + 1].to_vec();
                let right_page = tree.pager.allocate();
                tree.pager.write_page(
                    right_page,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }
                    .encode()?,
                )?;
                tree.pager.write_page(
                    page,
                    Node::Internal {
                        keys: left_keys,
                        children: left_children,
                    }
                    .encode()?,
                )?;
                Ok(Some((promote, right_page)))
            }
        }
    }

    /// Finds the leaf page that would contain `key`.
    fn find_leaf(tree: &mut TreeInner, key: &[u8]) -> Result<u32> {
        let mut page = tree.root;
        loop {
            let node = Node::decode(&tree.pager.read_page(page)?)?;
            match node {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
            }
        }
    }

    /// The live value of `key`, straight from the tree.
    fn live_value(tree: &mut TreeInner, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let leaf = Self::find_leaf(tree, key)?;
        let node = Node::decode(&tree.pager.read_page(leaf)?)?;
        let Node::Leaf { entries, .. } = node else {
            return Err(Error::corruption("expected leaf page"));
        };
        Ok(entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| entries[idx].1.clone()))
    }

    /// Bumps the sequence for a write to `key`, saving its pre-image while
    /// snapshots are live (and discarding the undo log once none are).
    fn begin_write(&self, tree: &mut TreeInner, key: &[u8]) -> Result<u64> {
        tree.last_sequence += 1;
        let seq = tree.last_sequence;
        if self.snapshots.has_active() {
            let old = Self::live_value(tree, key)?;
            tree.record_undo(key, old, seq);
        } else if !tree.undo.is_empty() {
            tree.undo = BTreeMap::new();
        }
        Ok(seq)
    }

    fn maybe_checkpoint(&self, tree: &mut TreeInner) -> Result<()> {
        tree.ops_since_checkpoint += 1;
        if tree.ops_since_checkpoint >= CHECKPOINT_EVERY {
            tree.ops_since_checkpoint = 0;
            tree.pager.checkpoint()?;
        }
        Ok(())
    }
}

impl KvStore for BTreeStore {
    fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut tree = self.inner.lock();
        self.begin_write(&mut tree, key)?;
        self.insert_entry(&mut tree, key, value)?;
        self.counters
            .add_user_bytes((key.len() + value.len()) as u64);
        self.maybe_checkpoint(&mut tree)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let mut tree = self.inner.lock();
        let live = Self::live_value(&mut tree, key)?;
        match opts.snapshot {
            Some(snapshot_seq) if snapshot_seq < tree.last_sequence => {
                Ok(tree.resolve_at(key, live, snapshot_seq))
            }
            _ => Ok(live),
        }
    }

    fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut tree = self.inner.lock();
        self.begin_write(&mut tree, key)?;
        let leaf = Self::find_leaf(&mut tree, key)?;
        let node = Node::decode(&tree.pager.read_page(leaf)?)?;
        let Node::Leaf {
            mut entries,
            next_leaf,
        } = node
        else {
            return Err(Error::corruption("expected leaf page"));
        };
        if let Ok(idx) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            entries.remove(idx);
            tree.pager
                .write_page(leaf, Node::Leaf { entries, next_leaf }.encode()?)?;
        }
        self.counters.add_user_bytes(key.len() as u64);
        self.maybe_checkpoint(&mut tree)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                ValueType::Value => self.put_opts(opts, record.key, record.value)?,
                ValueType::Deletion => self.delete_opts(opts, record.key)?,
                // Pointers are LSM-engine-internal; the B-tree baseline
                // stores every value inline.
                ValueType::ValuePointer => {
                    return Err(Error::invalid_argument(
                        "value pointers cannot be written directly",
                    ));
                }
            }
        }
        Ok(())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.counters.record_seek();
        // The cursor outlives this call, so even a snapshot equal to the
        // current sequence must keep resolving through the undo overlay —
        // writes issued after cursor creation would otherwise leak into the
        // batches it loads lazily.
        let snapshot = {
            let tree = self.inner.lock();
            opts.snapshot.map(|seq| seq.min(tree.last_sequence))
        };
        Ok(Box::new(BTreeIterator::new(
            Arc::clone(&self.inner),
            snapshot,
        )))
    }

    fn snapshot(&self) -> Snapshot {
        let tree = self.inner.lock();
        self.snapshots.acquire(tree.last_sequence)
    }

    fn flush(&self) -> Result<()> {
        let mut tree = self.inner.lock();
        tree.ops_since_checkpoint = 0;
        tree.pager.checkpoint()
    }

    fn stats(&self) -> StoreStats {
        let io = self.env.io_stats().snapshot();
        let tree = self.inner.lock();
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live: u64::from(tree.pager.num_pages()) * PAGE_SIZE as u64,
            num_files: 1,
            compactions: 0,
            flushes: 0,
            max_concurrent_compactions: 0,
            compaction_micros: 0,
            compaction_bytes_read: tree.pager.pages_read() * PAGE_SIZE as u64,
            compaction_bytes_written: tree.pager.pages_written() * PAGE_SIZE as u64,
            memory_usage_bytes: tree.pager.memory_usage() as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: 0,
            write_stall_micros: 0,
            memtable_clones: 0,
            ..Default::default()
        }
    }

    fn engine_name(&self) -> String {
        "BTree".to_string()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        vec![u64::from(self.num_pages()) * PAGE_SIZE as u64]
    }
}

/// A streaming cursor over the B+Tree's leaf pages.
///
/// The cursor materialises one leaf-sized batch at a time: it locks the
/// tree, loads the leaf owning the current position (merging the snapshot
/// undo overlay when reading as of a snapshot), and releases the lock until
/// the batch is exhausted. Forward motion follows the next bound (the
/// following leaf's first key); backward motion re-descends to the leaf
/// holding the predecessor, so the cursor never needs a previous-leaf chain.
struct BTreeIterator {
    tree: Arc<Mutex<TreeInner>>,
    /// Resolve against the undo overlay as of this sequence; `None` reads
    /// the live tree.
    snapshot: Option<u64>,
    /// The resolved batch, covering `[batch_lower, batch_upper)`.
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    idx: usize,
    /// Lower bound of the batch's coverage; `None` = unbounded below.
    batch_lower: Option<Vec<u8>>,
    /// Upper bound of the batch's coverage; `None` = unbounded above.
    batch_upper: Option<Vec<u8>>,
    valid: bool,
    /// First error hit while loading a leaf; ends iteration.
    error: Option<Error>,
}

impl BTreeIterator {
    fn new(tree: Arc<Mutex<TreeInner>>, snapshot: Option<u64>) -> Self {
        BTreeIterator {
            tree,
            snapshot,
            entries: Vec::new(),
            idx: 0,
            batch_lower: None,
            batch_upper: None,
            valid: false,
            error: None,
        }
    }

    fn record_load_error(&mut self, result: Result<()>) -> bool {
        match result {
            Ok(()) => true,
            Err(err) => {
                self.error = Some(err);
                self.valid = false;
                false
            }
        }
    }

    /// Resolves the batch covering `[from, upper)` from live entries and the
    /// undo overlay.
    fn resolve_batch(
        tree: &TreeInner,
        snapshot: Option<u64>,
        live: Vec<(Vec<u8>, Vec<u8>)>,
        from: &[u8],
        upper: Option<&[u8]>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let Some(snapshot_seq) = snapshot else {
            return live;
        };
        // Union of live keys and undo keys in range, in order.
        let upper_bound = match upper {
            Some(u) => Bound::Excluded(u.to_vec()),
            None => Bound::Unbounded,
        };
        let undo_keys: Vec<&Vec<u8>> = tree
            .undo
            .range((Bound::Included(from.to_vec()), upper_bound))
            .map(|(k, _)| k)
            .collect();
        let mut out = Vec::new();
        let mut undo_idx = 0;
        let mut push = |key: &[u8], live_value: Option<Vec<u8>>| {
            if let Some(value) = tree.resolve_at(key, live_value, snapshot_seq) {
                out.push((key.to_vec(), value));
            }
        };
        for (key, value) in &live {
            while undo_idx < undo_keys.len() && undo_keys[undo_idx].as_slice() < key.as_slice() {
                push(undo_keys[undo_idx], None);
                undo_idx += 1;
            }
            if undo_idx < undo_keys.len() && undo_keys[undo_idx].as_slice() == key.as_slice() {
                undo_idx += 1;
            }
            push(key, Some(value.clone()));
        }
        while undo_idx < undo_keys.len() {
            push(undo_keys[undo_idx], None);
            undo_idx += 1;
        }
        out
    }

    /// Loads the batch of resolved entries with keys `>= from`.
    fn load_forward(&mut self, from: &[u8]) -> Result<()> {
        let mut tree = self.tree.lock();
        let leaf = BTreeStore::find_leaf(&mut tree, from)?;
        let node = Node::decode(&tree.pager.read_page(leaf)?)?;
        let Node::Leaf { entries, next_leaf } = node else {
            return Err(Error::corruption("expected leaf page"));
        };
        // The batch's upper bound is the first key of the next non-empty
        // leaf (deletes can leave empty leaves in the chain).
        let mut upper: Option<Vec<u8>> = None;
        let mut next = next_leaf;
        while next != NO_PAGE {
            let node = Node::decode(&tree.pager.read_page(next)?)?;
            let Node::Leaf {
                entries: next_entries,
                next_leaf: after,
            } = node
            else {
                return Err(Error::corruption("expected leaf page"));
            };
            if let Some((first, _)) = next_entries.first() {
                upper = Some(first.clone());
                break;
            }
            next = after;
        }
        let live: Vec<(Vec<u8>, Vec<u8>)> = entries
            .into_iter()
            .filter(|(k, _)| k.as_slice() >= from)
            .collect();
        self.entries = Self::resolve_batch(&tree, self.snapshot, live, from, upper.as_deref());
        self.batch_lower = Some(from.to_vec());
        self.batch_upper = upper;
        Ok(())
    }

    /// Loads the batch of resolved entries with keys `< before` (every key
    /// when `before` is `None`), ending at the tree's rightmost live leaf
    /// below the bound.
    fn load_backward(&mut self, before: Option<&[u8]>) -> Result<()> {
        let mut tree = self.tree.lock();
        let root = tree.root;
        let leaf_entries = Self::leaf_with_entry_below(&mut tree, root, before)?;
        match leaf_entries {
            Some(entries) => {
                let from = entries[0].0.clone();
                let live: Vec<(Vec<u8>, Vec<u8>)> = entries
                    .into_iter()
                    .filter(|(k, _)| before.is_none_or(|b| k.as_slice() < b))
                    .collect();
                self.entries = Self::resolve_batch(&tree, self.snapshot, live, &from, before);
                self.batch_lower = Some(from);
                self.batch_upper = before.map(|b| b.to_vec());
            }
            None => {
                // No live key below the bound; snapshot-only keys (deleted
                // after the snapshot) may still exist in the undo overlay.
                self.entries = Self::resolve_batch(&tree, self.snapshot, Vec::new(), &[], before);
                self.batch_lower = None;
                self.batch_upper = before.map(|b| b.to_vec());
            }
        }
        Ok(())
    }

    /// Finds the entries of the leaf holding the largest live key `< before`
    /// (any live key when `before` is `None`).
    fn leaf_with_entry_below(
        tree: &mut TreeInner,
        page: u32,
        before: Option<&[u8]>,
    ) -> Result<Option<LeafEntries>> {
        let node = Node::decode(&tree.pager.read_page(page)?)?;
        match node {
            Node::Leaf { entries, .. } => {
                let has_candidate = entries
                    .iter()
                    .any(|(k, _)| before.is_none_or(|b| k.as_slice() < b));
                Ok(if has_candidate { Some(entries) } else { None })
            }
            Node::Internal { keys, children } => {
                let idx = match before {
                    Some(b) => keys.partition_point(|k| k.as_slice() < b),
                    None => keys.len(),
                };
                for child_idx in (0..=idx.min(children.len() - 1)).rev() {
                    if let Some(entries) =
                        Self::leaf_with_entry_below(tree, children[child_idx], before)?
                    {
                        return Ok(Some(entries));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Advances through forward batches until one is non-empty or the key
    /// space is exhausted.
    fn settle_forward(&mut self) {
        loop {
            if !self.entries.is_empty() {
                self.idx = 0;
                self.valid = true;
                return;
            }
            let Some(upper) = self.batch_upper.take() else {
                self.valid = false;
                return;
            };
            let result = self.load_forward(&upper);
            if !self.record_load_error(result) {
                return;
            }
        }
    }

    /// Retreats through backward batches until one is non-empty or the key
    /// space is exhausted.
    fn settle_backward(&mut self) {
        loop {
            if !self.entries.is_empty() {
                self.idx = self.entries.len() - 1;
                self.valid = true;
                return;
            }
            let Some(lower) = self.batch_lower.take() else {
                self.valid = false;
                return;
            };
            let result = self.load_backward(Some(&lower));
            if !self.record_load_error(result) {
                return;
            }
        }
    }
}

impl DbIterator for BTreeIterator {
    fn valid(&self) -> bool {
        self.valid && self.idx < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.seek(&[]);
    }

    fn seek_to_last(&mut self) {
        let result = self.load_backward(None);
        if !self.record_load_error(result) {
            return;
        }
        self.settle_backward();
    }

    fn seek(&mut self, target: &[u8]) {
        let result = self.load_forward(target);
        if !self.record_load_error(result) {
            return;
        }
        self.settle_forward();
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        self.idx += 1;
        if self.idx >= self.entries.len() {
            let Some(upper) = self.batch_upper.take() else {
                self.valid = false;
                return;
            };
            let result = self.load_forward(&upper);
            if !self.record_load_error(result) {
                return;
            }
            self.settle_forward();
        }
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid iterator");
        if self.idx > 0 {
            self.idx -= 1;
            return;
        }
        let Some(lower) = self.batch_lower.take() else {
            self.valid = false;
            return;
        };
        if self.load_backward(Some(&lower)).is_err() {
            self.valid = false;
            return;
        }
        self.settle_backward();
    }

    fn key(&self) -> &[u8] {
        assert!(self.valid(), "key() on invalid iterator");
        &self.entries[self.idx].0
    }

    fn value(&self) -> &[u8] {
        assert!(self.valid(), "value() on invalid iterator");
        &self.entries[self.idx].1
    }

    fn status(&self) -> Result<()> {
        match &self.error {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::MemEnv;

    #[test]
    fn sequential_and_reverse_inserts_balance() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        for i in 0..1000u32 {
            db.put(format!("a{i:06}").as_bytes(), b"1").unwrap();
        }
        for i in (0..1000u32).rev() {
            db.put(format!("z{i:06}").as_bytes(), b"2").unwrap();
        }
        assert_eq!(db.get(b"a000500").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"z000500").unwrap(), Some(b"2".to_vec()));
        assert!(db.num_pages() > 4);
    }

    #[test]
    fn batch_writes_apply_in_order() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v1");
        batch.put(b"k", b"v2");
        batch.delete(b"gone");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn cursor_streams_across_leaves_in_both_directions() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        for i in 0..500u32 {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert!(db.num_pages() > 3, "spans several leaves");

        let mut iter = db.iter(&ReadOptions::default()).unwrap();
        iter.seek_to_first();
        let mut count = 0u32;
        let mut last: Option<Vec<u8>> = None;
        while iter.valid() {
            if let Some(prev) = &last {
                assert!(prev.as_slice() < iter.key());
            }
            last = Some(iter.key().to_vec());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 500);

        iter.seek_to_last();
        assert_eq!(iter.key(), b"k00499");
        let mut back = 0u32;
        while iter.valid() {
            back += 1;
            iter.prev();
        }
        assert_eq!(back, 500);

        iter.seek(b"k00123");
        assert_eq!(iter.key(), b"k00123");
        iter.prev();
        assert_eq!(iter.key(), b"k00122");
    }

    #[test]
    fn snapshot_reads_see_pre_write_values() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();

        let snap = db.snapshot();
        db.put(b"a", b"1x").unwrap();
        db.delete(b"b").unwrap();
        db.put(b"c", b"3").unwrap();

        let opts = snap.read_options();
        assert_eq!(db.get_opts(&opts, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get_opts(&opts, b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get_opts(&opts, b"c").unwrap(), None);
        // Latest reads are unaffected.
        assert_eq!(db.get(b"a").unwrap(), Some(b"1x".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), None);
        assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));

        // The snapshot cursor sees the old world, deletions included.
        let got = db.scan_opts(&opts, b"", &[], 100).unwrap();
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );

        // Dropping the snapshot releases the undo log on the next write.
        drop(snap);
        db.put(b"d", b"4").unwrap();
        assert!(db.inner.lock().undo.is_empty());
    }

    #[test]
    fn snapshot_cursor_hides_writes_made_after_its_creation() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = BTreeStore::open(env, Path::new("/bt"), StoreOptions::default()).unwrap();
        db.put(b"a", b"1").unwrap();

        // Snapshot at the *current* sequence, cursor created immediately —
        // the cursor loads its batches lazily, so writes racing it must
        // still be hidden.
        let snap = db.snapshot();
        let mut iter = db.iter(&snap.read_options()).unwrap();
        db.put(b"b", b"2").unwrap();
        db.put(b"a", b"1-new").unwrap();

        iter.seek_to_first();
        assert!(iter.valid());
        assert_eq!(iter.key(), b"a");
        assert_eq!(iter.value(), b"1");
        iter.next();
        assert!(!iter.valid(), "post-snapshot insert must stay hidden");
    }
}
