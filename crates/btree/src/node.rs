//! B+Tree node layout and (de)serialisation.

use pebblesdb_common::{Error, Result};

use crate::PAGE_SIZE;

/// Byte tag identifying a leaf page.
const TAG_LEAF: u8 = 1;
/// Byte tag identifying an internal page.
const TAG_INTERNAL: u8 = 2;
/// Page id meaning "no page".
pub const NO_PAGE: u32 = u32::MAX;

/// A decoded B+Tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A leaf holding sorted `(key, value)` pairs and a pointer to the next
    /// leaf (for range scans).
    Leaf {
        /// Sorted entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// Page id of the next leaf, or [`NO_PAGE`].
        next_leaf: u32,
    },
    /// An internal node: `children.len() == keys.len() + 1`; subtree
    /// `children[i]` holds keys `< keys[i]`, the last child holds the rest.
    Internal {
        /// Separator keys.
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u32>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
            next_leaf: NO_PAGE,
        }
    }

    /// Returns `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serialised size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                1 + 2
                    + 4
                    + entries
                        .iter()
                        .map(|(k, v)| 2 + 2 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, children } => {
                1 + 2 + 4 * children.len() + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
        }
    }

    /// Returns `true` if the node no longer fits in a page and must split.
    pub fn overflows(&self) -> bool {
        self.encoded_size() > PAGE_SIZE
    }

    /// Serialises the node into a page-sized buffer.
    pub fn encode(&self) -> Result<Vec<u8>> {
        if self.encoded_size() > PAGE_SIZE {
            return Err(Error::internal("b+tree node exceeds page size"));
        }
        let mut out = Vec::with_capacity(PAGE_SIZE);
        match self {
            Node::Leaf { entries, next_leaf } => {
                out.push(TAG_LEAF);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&next_leaf.to_le_bytes());
                for (key, value) in entries {
                    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                    out.extend_from_slice(&(value.len() as u16).to_le_bytes());
                    out.extend_from_slice(key);
                    out.extend_from_slice(value);
                }
            }
            Node::Internal { keys, children } => {
                out.push(TAG_INTERNAL);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for child in children {
                    out.extend_from_slice(&child.to_le_bytes());
                }
                for key in keys {
                    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                    out.extend_from_slice(key);
                }
            }
        }
        out.resize(PAGE_SIZE, 0);
        Ok(out)
    }

    /// Decodes a node from a page.
    pub fn decode(page: &[u8]) -> Result<Node> {
        if page.is_empty() {
            return Err(Error::corruption("empty b+tree page"));
        }
        let mut pos = 1usize;
        let read_u16 = |page: &[u8], pos: &mut usize| -> Result<u16> {
            if *pos + 2 > page.len() {
                return Err(Error::corruption("truncated b+tree page"));
            }
            let v = u16::from_le_bytes([page[*pos], page[*pos + 1]]);
            *pos += 2;
            Ok(v)
        };
        let read_u32 = |page: &[u8], pos: &mut usize| -> Result<u32> {
            if *pos + 4 > page.len() {
                return Err(Error::corruption("truncated b+tree page"));
            }
            let v =
                u32::from_le_bytes([page[*pos], page[*pos + 1], page[*pos + 2], page[*pos + 3]]);
            *pos += 4;
            Ok(v)
        };
        match page[0] {
            TAG_LEAF => {
                let count = read_u16(page, &mut pos)? as usize;
                let next_leaf = read_u32(page, &mut pos)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = read_u16(page, &mut pos)? as usize;
                    let vlen = read_u16(page, &mut pos)? as usize;
                    if pos + klen + vlen > page.len() {
                        return Err(Error::corruption("truncated leaf entry"));
                    }
                    let key = page[pos..pos + klen].to_vec();
                    pos += klen;
                    let value = page[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((key, value));
                }
                Ok(Node::Leaf { entries, next_leaf })
            }
            TAG_INTERNAL => {
                let count = read_u16(page, &mut pos)? as usize;
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..count + 1 {
                    children.push(read_u32(page, &mut pos)?);
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = read_u16(page, &mut pos)? as usize;
                    if pos + klen > page.len() {
                        return Err(Error::corruption("truncated internal key"));
                    }
                    keys.push(page[pos..pos + klen].to_vec());
                    pos += klen;
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(Error::corruption(format!(
                "unknown b+tree page tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![
                (b"apple".to_vec(), b"red".to_vec()),
                (b"banana".to_vec(), b"yellow".to_vec()),
            ],
            next_leaf: 42,
        };
        let page = node.encode().unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(Node::decode(&page).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            keys: vec![b"m".to_vec(), b"t".to_vec()],
            children: vec![1, 2, 3],
        };
        let page = node.encode().unwrap();
        assert_eq!(Node::decode(&page).unwrap(), node);
    }

    #[test]
    fn oversized_node_is_rejected_and_detected() {
        let node = Node::Leaf {
            entries: vec![(vec![b'k'; 100], vec![b'v'; PAGE_SIZE])],
            next_leaf: NO_PAGE,
        };
        assert!(node.overflows());
        assert!(node.encode().is_err());
    }

    #[test]
    fn corrupt_pages_are_rejected() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9u8; 16]).is_err());
        let mut page = vec![TAG_LEAF];
        page.extend_from_slice(&100u16.to_le_bytes());
        assert!(Node::decode(&page).is_err());
    }
}
