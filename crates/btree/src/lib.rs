//! A page-oriented B+Tree key-value store.
//!
//! This engine plays the role of the B-tree-based stores the paper uses for
//! motivation and comparison: KyotoCabinet / BerkeleyDB in the write
//! amplification discussion (chapter 2: "inserting 100 million key-value
//! pairs into KyotoCabinet writes 829 GB to storage") and WiredTiger as
//! MongoDB's default engine in Figure 5.6(b). Updating a B+Tree dirties whole
//! pages along the root-to-leaf path, so every small write eventually costs a
//! page-sized write-back — the behaviour whose amplification the LSM family
//! (and FLSM in particular) avoids.
//!
//! The implementation is a straightforward disk B+Tree: fixed 4 KiB pages, a
//! buffer pool with write-back eviction, leaf chaining for range scans, and a
//! checkpoint operation that flushes dirty pages. It favours clarity over
//! maximum performance but performs real page IO through the shared
//! [`Env`](pebblesdb_env::Env) abstraction so its write amplification is
//! measured the same way as the other engines.

pub mod node;
pub mod pager;
pub mod tree;

pub use tree::BTreeStore;

/// Size of every on-disk page.
pub const PAGE_SIZE: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::{KvStore, StoreOptions};
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;
    use std::sync::Arc;

    fn open(env: Arc<dyn Env>, path: &Path) -> BTreeStore {
        BTreeStore::open(env, path, StoreOptions::default()).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("user{i:08}").into_bytes()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open(env, Path::new("/bt"));
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"gamma").unwrap(), None);
        db.delete(b"alpha").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), None);
        db.put(b"beta", b"22").unwrap();
        assert_eq!(db.get(b"beta").unwrap(), Some(b"22".to_vec()));
        assert_eq!(db.engine_name(), "BTree");
    }

    #[test]
    fn many_inserts_split_pages_and_stay_sorted() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open(env, Path::new("/bt"));
        let n = 5000u32;
        for i in 0..n {
            // Insert in a scrambled (but bijective) order so splits happen
            // everywhere and every key in 0..n is present exactly once.
            let k = (i * 7 + 13) % n;
            db.put(&key(k), format!("value-{k}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        for i in (0..n).step_by(61) {
            assert_eq!(
                db.get(&key(i)).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
        let scanned = db.scan(&key(100), &key(200), 1000).unwrap();
        assert_eq!(scanned.len(), 100);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn data_survives_reopen_after_checkpoint() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let path = Path::new("/bt");
        {
            let db = open(Arc::clone(&env), path);
            for i in 0..2000u32 {
                db.put(&key(i), &[b'v'; 100]).unwrap();
            }
            db.flush().unwrap();
        }
        let db = open(env, path);
        for i in (0..2000).step_by(97) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(vec![b'v'; 100]));
        }
    }

    #[test]
    fn write_amplification_exceeds_lsm_style_stores() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open(Arc::clone(&env), Path::new("/bt"));
        let n = 3000u32;
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % n;
            db.put(&key(k), &[b'v'; 128]).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        // Page-granularity write-back means each ~140-byte entry costs far
        // more than its own size in device writes.
        assert!(
            stats.write_amplification() > 3.0,
            "expected page-level write amplification, got {}",
            stats.write_amplification()
        );
    }

    #[test]
    fn oversized_values_are_rejected() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open(env, Path::new("/bt"));
        assert!(db.put(b"k", &vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn unbounded_scans_follow_the_leaf_chain() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = open(env, Path::new("/bt"));
        for i in 0..1200u32 {
            db.put(&key(i), b"x").unwrap();
        }
        let all = db.scan(&key(0), &[], 5000).unwrap();
        assert_eq!(all.len(), 1200);
        let limited = db.scan(&key(500), &[], 10).unwrap();
        assert_eq!(limited.len(), 10);
        assert_eq!(limited[0].0, key(500));
    }
}
