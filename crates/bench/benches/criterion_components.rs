//! Criterion micro-benchmarks for the substrate components: skiplist,
//! bloom filter, CRC32C, MurmurHash guard selection, WAL append and sstable
//! build/read. These complement the per-figure binaries in `src/bin/`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::Path;
use std::sync::Arc;

use pebblesdb_bloom::BloomFilterPolicy;
use pebblesdb_common::hash::murmur3_32;
use pebblesdb_common::key::{encode_internal_key, ValueType};
use pebblesdb_common::{crc32c, ReadOptions, StoreOptions};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_skiplist::MemTable;
use pebblesdb_sstable::{Table, TableBuilder};
use pebblesdb_wal::LogWriter;

fn bench_skiplist(c: &mut Criterion) {
    c.bench_function("skiplist/memtable_insert_1k", |b| {
        b.iter_batched(
            MemTable::new,
            |mem| {
                for i in 0..1000u64 {
                    mem.add(
                        i,
                        ValueType::Value,
                        format!("key{i:08}").as_bytes(),
                        &[0u8; 100],
                    );
                }
                mem
            },
            BatchSize::SmallInput,
        )
    });

    let mem = MemTable::new();
    for i in 0..10_000u64 {
        mem.add(
            i,
            ValueType::Value,
            format!("key{i:08}").as_bytes(),
            &[0u8; 100],
        );
    }
    c.bench_function("skiplist/memtable_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            let key = pebblesdb_common::key::LookupKey::new(
                format!("key{i:08}").as_bytes(),
                u64::MAX >> 8,
            );
            std::hint::black_box(mem.get(&key))
        })
    });
}

fn bench_hashes_and_filters(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000)
        .map(|i| format!("user{i:012}").into_bytes())
        .collect();

    c.bench_function("hash/murmur3_guard_selection", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(murmur3_32(&keys[i], 0x9747_b28c).trailing_ones())
        })
    });

    c.bench_function("hash/crc32c_4k", |b| {
        let block = vec![0xabu8; 4096];
        b.iter(|| std::hint::black_box(crc32c::crc32c(&block)))
    });

    let policy = BloomFilterPolicy::new(10);
    let filter = policy.create_filter(&keys);
    c.bench_function("bloom/build_10k_keys", |b| {
        b.iter(|| std::hint::black_box(policy.create_filter(&keys)))
    });
    c.bench_function("bloom/lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(policy.key_may_match(&keys[i], &filter))
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal/append_1k_records", |b| {
        b.iter_batched(
            || {
                let env = MemEnv::new();
                let file = env.new_writable_file(Path::new("/wal.log")).unwrap();
                LogWriter::new(file)
            },
            |mut writer| {
                for i in 0..1000u64 {
                    writer.add_record(format!("record-{i}").as_bytes()).unwrap();
                }
                writer
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sstable(c: &mut Criterion) {
    let options = StoreOptions::default();
    let env = MemEnv::new();

    c.bench_function("sstable/build_5k_entries", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            let path = format!("/bench-{run}.sst");
            let file = env.new_writable_file(Path::new(&path)).unwrap();
            let mut builder = TableBuilder::new(&options, file);
            for i in 0..5000u64 {
                let key =
                    encode_internal_key(format!("key{i:010}").as_bytes(), 1, ValueType::Value);
                builder.add(&key, &[0u8; 100]).unwrap();
            }
            std::hint::black_box(builder.finish().unwrap())
        })
    });

    // Build one table for read benchmarks.
    let path = Path::new("/read-bench.sst");
    let file = env.new_writable_file(path).unwrap();
    let mut builder = TableBuilder::new(&options, file);
    for i in 0..10_000u64 {
        let key = encode_internal_key(format!("key{i:010}").as_bytes(), 1, ValueType::Value);
        builder.add(&key, &[0u8; 100]).unwrap();
    }
    let size = builder.finish().unwrap();
    let table = Arc::new(
        Table::open(
            &options,
            env.new_random_access_file(path).unwrap(),
            size,
            1,
            None,
        )
        .unwrap(),
    );
    c.bench_function("sstable/point_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 6151) % 10_000;
            let target = encode_internal_key(
                format!("key{i:010}").as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            );
            std::hint::black_box(table.get(&ReadOptions::default(), &target).unwrap())
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_skiplist, bench_hashes_and_filters, bench_wal, bench_sstable
);
criterion_main!(components);
