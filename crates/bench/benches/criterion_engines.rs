//! Criterion benchmarks comparing end-to-end engine operations: put, get and
//! short range scans for PebblesDB and the HyperLevelDB-style baseline.
//!
//! These are per-operation latency views of the same comparison the
//! per-figure binaries report as throughput; the expected shape is the
//! paper's: PebblesDB's puts are cheaper (less compaction stall time behind
//! them), gets are comparable, and short scans on a compacted store are
//! somewhat more expensive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use pebblesdb_bench::workloads::{bench_key, bench_value};
use pebblesdb_bench::{open_engine, EngineKind};
use pebblesdb_common::KvStore;
use pebblesdb_env::MemEnv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn prepared_store(kind: EngineKind, keys: u64) -> Arc<dyn KvStore> {
    let env = Arc::new(MemEnv::new());
    let dir = std::path::PathBuf::from(format!("/criterion/{}", kind.name()));
    let store = open_engine(kind, env, &dir, 16).expect("open engine");
    let mut rng = StdRng::seed_from_u64(11);
    for i in 0..keys {
        store
            .put(&bench_key(i), &bench_value(i, 256, &mut rng))
            .expect("preload");
    }
    store.flush().expect("flush");
    store
}

fn bench_engines(c: &mut Criterion) {
    let preload = 20_000u64;
    for kind in [EngineKind::PebblesDb, EngineKind::HyperLevelDb] {
        let store = prepared_store(kind, preload);
        let mut rng = StdRng::seed_from_u64(77);

        let mut group = c.benchmark_group(format!("engine/{}", kind.name()));
        group.sample_size(30);

        group.bench_function("put", |b| {
            let mut i = preload;
            b.iter(|| {
                i += 1;
                store
                    .put(
                        &bench_key(i % (preload * 2)),
                        &bench_value(i, 256, &mut rng),
                    )
                    .unwrap()
            })
        });

        group.bench_function("get_hit", |b| {
            b.iter(|| {
                let k = rng.gen_range(0..preload);
                std::hint::black_box(store.get(&bench_key(k)).unwrap())
            })
        });

        group.bench_function("scan_20", |b| {
            b.iter(|| {
                let k = rng.gen_range(0..preload);
                std::hint::black_box(store.scan(&bench_key(k), &[], 20).unwrap())
            })
        });

        group.finish();
    }
}

criterion_group!(engines, bench_engines);
criterion_main!(engines);
