//! The PebblesDB evaluation harness.
//!
//! Every table and figure of the paper's evaluation chapter has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index). The
//! binaries share this library:
//!
//! * [`engines`] — opens any of the evaluated stores (PebblesDB, PebblesDB-1,
//!   HyperLevelDB/LevelDB/RocksDB presets of the baseline LSM, the B+Tree)
//!   behind the common [`KvStore`](pebblesdb_common::KvStore) trait, with
//!   benchmark-scaled options.
//! * [`workloads`] — `db_bench`-style micro-benchmark loops (fillseq,
//!   fillrandom, readrandom, seekrandom, deleterandom, ...).
//! * [`report`] — fixed-width result tables plus the paper's reported numbers
//!   for side-by-side comparison.
//! * [`keygen`] — the key/value generators every workload (and the network
//!   bench client) draws from, so local and networked runs hit the same key
//!   space.
//!
//! The `--flag value` parser the binaries share lives in
//! [`pebblesdb_common::args`] (re-exported here), because the server binary
//! uses it too.
//!
//! All experiments run at laptop scale by default (`--keys`, `--value-size`
//! and `--threads` flags change that); `EXPERIMENTS.md` records the shapes
//! measured this way against the paper's numbers.

pub mod engines;
pub mod keygen;
pub mod report;
pub mod workloads;

pub use pebblesdb_common::args::{self, Args};

pub use engines::{open_engine, open_engine_with_options, scaled_options, EngineKind};
pub use keygen::{bench_key, bench_value};
pub use report::Report;
pub use workloads::{BenchResult, Workload};

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::MemEnv;
    use std::sync::Arc;

    #[test]
    fn every_engine_kind_opens_and_serves_reads() {
        for kind in EngineKind::all() {
            let env = Arc::new(MemEnv::new());
            let dir = std::path::PathBuf::from(format!("/bench-{}", kind.name()));
            let store = open_engine(kind, env, &dir, 4).unwrap();
            store.put(b"k", b"v").unwrap();
            assert_eq!(
                store.get(b"k").unwrap(),
                Some(b"v".to_vec()),
                "{}",
                kind.name()
            );
            assert!(!store.engine_name().is_empty());
        }
    }

    #[test]
    fn fillrandom_then_readrandom_roundtrips() {
        let env = Arc::new(MemEnv::new());
        let store =
            open_engine(EngineKind::PebblesDb, env, std::path::Path::new("/b"), 16).unwrap();
        let fill = Workload::FillRandom.run(&store, 2000, 16, 100, 1).unwrap();
        assert_eq!(fill.operations, 2000);
        assert!(fill.kops_per_second() > 0.0);
        let read = Workload::ReadRandom.run(&store, 1000, 16, 100, 1).unwrap();
        assert_eq!(read.operations, 1000);
        // Random fills sample keys with replacement, so roughly 1 - 1/e of
        // the key space exists; well over half the reads must hit.
        assert!(read.found.unwrap_or(0) > 500, "found {:?}", read.found);
    }

    #[test]
    fn seek_and_delete_workloads_execute() {
        let env = Arc::new(MemEnv::new());
        let store = open_engine(
            EngineKind::HyperLevelDb,
            env,
            std::path::Path::new("/b"),
            16,
        )
        .unwrap();
        Workload::FillSeq.run(&store, 1000, 16, 64, 1).unwrap();
        let seek = Workload::SeekRandom.run(&store, 200, 16, 64, 1).unwrap();
        assert_eq!(seek.operations, 200);
        let del = Workload::DeleteRandom.run(&store, 500, 16, 64, 1).unwrap();
        assert_eq!(del.operations, 500);
    }

    #[test]
    fn multithreaded_mixed_workload_executes() {
        let env = Arc::new(MemEnv::new());
        let store = open_engine(EngineKind::RocksDb, env, std::path::Path::new("/b"), 16).unwrap();
        Workload::FillRandom.run(&store, 1000, 16, 64, 2).unwrap();
        let mixed = Workload::ReadWhileWriting
            .run(&store, 1000, 16, 64, 4)
            .unwrap();
        assert!(mixed.operations >= 1000);
    }

    #[test]
    fn args_parse_flags_and_defaults() {
        let args = Args::parse_from(vec![
            "prog".to_string(),
            "--keys".to_string(),
            "1234".to_string(),
            "--engine".to_string(),
            "pebblesdb".to_string(),
            "--quick".to_string(),
        ]);
        assert_eq!(args.get_u64("keys", 10), 1234);
        assert_eq!(args.get_u64("missing", 7), 7);
        assert_eq!(args.get_str("engine", "x"), "pebblesdb");
        assert!(args.has_flag("quick"));
        assert!(!args.has_flag("verbose"));
    }

    #[test]
    fn report_renders_all_rows() {
        let mut report = Report::new("Demo", vec!["engine".to_string(), "kops".to_string()]);
        report.add_row(vec!["PebblesDB".to_string(), "12.3".to_string()]);
        report.add_row(vec!["LevelDB".to_string(), "4.5".to_string()]);
        let rendered = report.render();
        assert!(rendered.contains("PebblesDB"));
        assert!(rendered.contains("LevelDB"));
        assert!(rendered.contains("kops"));
    }
}
