//! Fixed-width result tables for the benchmark binaries.

/// A printable result table with a title and optional paper reference note.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with the given column headers.
    pub fn new(title: &str, columns: Vec<String>) -> Report {
        Report {
            title: title.to_string(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds one data row (must match the column count).
    pub fn add_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Adds a free-form note printed under the table (for the paper's
    /// reported numbers and caveats).
    pub fn add_note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (idx, cell) in row.iter().enumerate() {
                if idx < widths.len() {
                    widths[idx] = widths[idx].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(idx, col)| format!("{col:<width$}", width = widths[idx]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(idx, cell)| format!("{cell:<width$}", width = widths[idx]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

// One byte formatter for every stats surface: the server's INFO command and
// Prometheus endpoint render the same fields, so the rendering lives in
// `pebblesdb_common::stats_text` and this is just the historical name.
pub use pebblesdb_common::stats_text::format_mib;

/// Formats a ratio with two decimals.
pub fn format_ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a throughput value in KOps/s with one decimal.
pub fn format_kops(value: f64) -> String {
    format!("{value:.1}")
}
