//! `db_bench`-style micro-benchmark workloads.
//!
//! These mirror the LevelDB `db_bench` operations the paper uses in Figure
//! 5.1: sequential and random fills, random reads, random seeks (range-query
//! starts), deletes, and the mixed read-while-writing workload used for the
//! multi-threaded experiment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebblesdb_common::{KvStore, ReadOptions, Result};

/// The micro-benchmark operations of Figure 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Insert keys in ascending order.
    FillSeq,
    /// Insert keys in random order.
    FillRandom,
    /// Overwrite random existing keys.
    Overwrite,
    /// Point-read random keys.
    ReadRandom,
    /// Position an iterator at random keys (seek only, the paper's worst
    /// case for PebblesDB).
    SeekRandom,
    /// Seek followed by a fixed number of `next()` calls.
    RangeQuery {
        /// Number of entries read after the seek.
        nexts: usize,
    },
    /// Delete random keys.
    DeleteRandom,
    /// Half the threads read while the other half write.
    ReadWhileWriting,
    /// Half the threads drive range-scan cursors while the other half write
    /// — the YCSB-E-shaped cursor-vs-writer race that used to trigger a
    /// memtable deep copy per interleaving before the concurrent memtable.
    MixedScanWrite {
        /// Number of entries each scan reads after its seek.
        nexts: usize,
    },
}

/// The outcome of one workload execution.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload label.
    pub name: String,
    /// Engine label.
    pub engine: String,
    /// Operations executed.
    pub operations: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// For read workloads, how many keys were found.
    pub found: Option<u64>,
    /// Device bytes written during the workload.
    pub bytes_written: u64,
    /// Device bytes read during the workload.
    pub bytes_read: u64,
    /// User payload bytes handed to the store during the workload.
    pub user_bytes: u64,
    /// Microseconds writers spent stalled during the workload.
    pub stall_micros: u64,
    /// Largest number of compaction jobs the store ever ran concurrently
    /// (a lifetime high-water mark, not an interval delta).
    pub max_concurrent_compactions: u64,
    /// Block-cache hits during the workload.
    pub block_cache_hits: u64,
    /// Block-cache misses during the workload.
    pub block_cache_misses: u64,
}

impl BenchResult {
    /// Throughput in thousands of operations per second.
    pub fn kops_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.operations as f64 / self.seconds / 1000.0
        }
    }

    /// Write amplification over the measured interval.
    pub fn write_amplification(&self) -> f64 {
        if self.user_bytes == 0 {
            0.0
        } else {
            self.bytes_written as f64 / self.user_bytes as f64
        }
    }

    /// Block-cache hit percentage over the measured interval, or `None`
    /// when the cache was never consulted (e.g. pure fill workloads).
    pub fn block_cache_hit_pct(&self) -> Option<f64> {
        let total = self.block_cache_hits + self.block_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.block_cache_hits as f64 * 100.0 / total as f64)
        }
    }
}

// Key/value generation lives in [`crate::keygen`] so the network bench
// client hits the exact same key space; re-exported here because every
// workload call site historically imported them from this module.
pub use crate::keygen::{bench_key, bench_value, bench_value_compressible};

impl Workload {
    /// Display name of the workload.
    pub fn name(&self) -> String {
        match self {
            Workload::FillSeq => "fillseq".to_string(),
            Workload::FillRandom => "fillrandom".to_string(),
            Workload::Overwrite => "overwrite".to_string(),
            Workload::ReadRandom => "readrandom".to_string(),
            Workload::SeekRandom => "seekrandom".to_string(),
            Workload::RangeQuery { nexts } => format!("rangequery({nexts})"),
            Workload::DeleteRandom => "deleterandom".to_string(),
            Workload::ReadWhileWriting => "readwhilewriting".to_string(),
            Workload::MixedScanWrite { nexts } => format!("mixed_scan_write({nexts})"),
        }
    }

    /// Runs `operations` operations against `store` with `threads` threads.
    ///
    /// `key_space` bounds the random key indices so read workloads hit data
    /// written by an earlier fill; for fills it is the number of keys
    /// inserted.
    pub fn run(
        &self,
        store: &Arc<dyn KvStore>,
        operations: u64,
        key_size: usize,
        value_size: usize,
        threads: usize,
    ) -> Result<BenchResult> {
        self.run_sharded(
            std::slice::from_ref(store),
            operations,
            key_size,
            value_size,
            threads,
        )
    }

    /// Like [`Workload::run`], but round-robins keys across `stores` — in
    /// practice one [`KvStore`] handle per column family, so `--cfs N` runs
    /// drive N namespaces of one database with the same key stream.
    ///
    /// Statistics are read from `stores[0]`; every handle of one database
    /// reports the same store-wide IO and stall counters, so the deltas
    /// cover all shards.
    pub fn run_sharded(
        &self,
        stores: &[Arc<dyn KvStore>],
        operations: u64,
        key_size: usize,
        value_size: usize,
        threads: usize,
    ) -> Result<BenchResult> {
        self.run_sharded_compressible(stores, operations, key_size, value_size, threads, 1.0)
    }

    /// Like [`Workload::run_sharded`], with a target value compressibility:
    /// `compressibility` is the ratio an ideal codec would shrink each value
    /// to (see [`bench_value_compressible`]); `1.0` means fully random.
    pub fn run_sharded_compressible(
        &self,
        stores: &[Arc<dyn KvStore>],
        operations: u64,
        _key_size: usize,
        value_size: usize,
        threads: usize,
        compressibility: f64,
    ) -> Result<BenchResult> {
        assert!(!stores.is_empty(), "need at least one store");
        let threads = threads.max(1);
        let store = &stores[0];
        let stats_before = store.stats();
        let start = Instant::now();
        let found = AtomicU64::new(0);
        let executed = AtomicU64::new(0);

        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            for thread_id in 0..threads {
                let found = &found;
                let executed = &executed;
                let workload = *self;
                handles.push(scope.spawn(move || -> Result<()> {
                    let per_thread = operations / threads as u64;
                    let mut rng = StdRng::seed_from_u64(0xbeef_0000 + thread_id as u64);
                    for i in 0..per_thread {
                        let global_index = thread_id as u64 * per_thread + i;
                        workload.run_one(
                            stores,
                            global_index,
                            operations,
                            value_size,
                            compressibility,
                            thread_id,
                            threads,
                            &mut rng,
                            found,
                        )?;
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("bench thread panicked")?;
            }
            Ok(())
        })?;

        let seconds = start.elapsed().as_secs_f64();
        let stats_after = store.stats();
        Ok(BenchResult {
            name: self.name(),
            engine: store.engine_name(),
            operations: executed.load(Ordering::Relaxed),
            seconds,
            found: match self {
                Workload::ReadRandom | Workload::ReadWhileWriting => {
                    Some(found.load(Ordering::Relaxed))
                }
                _ => None,
            },
            bytes_written: stats_after
                .bytes_written
                .saturating_sub(stats_before.bytes_written),
            bytes_read: stats_after
                .bytes_read
                .saturating_sub(stats_before.bytes_read),
            user_bytes: stats_after
                .user_bytes_written
                .saturating_sub(stats_before.user_bytes_written),
            stall_micros: stats_after
                .write_stall_micros
                .saturating_sub(stats_before.write_stall_micros),
            max_concurrent_compactions: stats_after.max_concurrent_compactions,
            block_cache_hits: stats_after
                .block_cache_hits
                .saturating_sub(stats_before.block_cache_hits),
            block_cache_misses: stats_after
                .block_cache_misses
                .saturating_sub(stats_before.block_cache_misses),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        stores: &[Arc<dyn KvStore>],
        index: u64,
        key_space: u64,
        value_size: usize,
        compressibility: f64,
        thread_id: usize,
        threads: usize,
        rng: &mut StdRng,
        found: &AtomicU64,
    ) -> Result<()> {
        let key_space = key_space.max(1);
        // Round-robin: key `k` always lands in the same shard (column
        // family), so reads find what fills wrote regardless of shard count.
        let shard = |k: u64| &stores[(k % stores.len() as u64) as usize];
        let value_for = |k: u64, rng: &mut StdRng| {
            bench_value_compressible(k, value_size, compressibility, rng)
        };
        match self {
            Workload::FillSeq => {
                let value = value_for(index, rng);
                shard(index).put(&bench_key(index), &value)?;
            }
            Workload::FillRandom | Workload::Overwrite => {
                let k = rng.gen_range(0..key_space);
                let value = value_for(k, rng);
                shard(k).put(&bench_key(k), &value)?;
            }
            Workload::ReadRandom => {
                let k = rng.gen_range(0..key_space);
                if shard(k).get(&bench_key(k))?.is_some() {
                    found.fetch_add(1, Ordering::Relaxed);
                }
            }
            Workload::SeekRandom => {
                // Pure cursor positioning — the paper's worst case for
                // PebblesDB (a seek must consult every sstable in a guard).
                let k = rng.gen_range(0..key_space);
                let mut iter = shard(k).iter(&ReadOptions::default())?;
                iter.seek(&bench_key(k));
                std::hint::black_box(iter.valid());
            }
            Workload::RangeQuery { nexts } => {
                let k = rng.gen_range(0..key_space);
                let mut iter = shard(k).iter(&ReadOptions::default())?;
                iter.seek(&bench_key(k));
                let mut read = 0usize;
                while iter.valid() && read < *nexts {
                    std::hint::black_box((iter.key(), iter.value()));
                    read += 1;
                    iter.next();
                }
            }
            Workload::DeleteRandom => {
                let k = rng.gen_range(0..key_space);
                shard(k).delete(&bench_key(k))?;
            }
            Workload::ReadWhileWriting => {
                // Even threads read, odd threads write (at least one of each
                // when threads >= 2).
                if thread_id.is_multiple_of(2) || threads == 1 {
                    let k = rng.gen_range(0..key_space);
                    if shard(k).get(&bench_key(k))?.is_some() {
                        found.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    let k = rng.gen_range(0..key_space);
                    let value = value_for(k, rng);
                    shard(k).put(&bench_key(k), &value)?;
                }
            }
            Workload::MixedScanWrite { nexts } => {
                // Even threads scan, odd threads write; with a single thread
                // the two roles alternate per operation so the cursor still
                // races the write stream.
                let scan = if threads == 1 {
                    index.is_multiple_of(2)
                } else {
                    thread_id.is_multiple_of(2)
                };
                if scan {
                    let k = rng.gen_range(0..key_space);
                    let mut iter = shard(k).iter(&ReadOptions::default())?;
                    iter.seek(&bench_key(k));
                    let mut read = 0usize;
                    while iter.valid() && read < *nexts {
                        std::hint::black_box((iter.key(), iter.value()));
                        read += 1;
                        iter.next();
                    }
                } else {
                    let k = rng.gen_range(0..key_space);
                    let value = value_for(k, rng);
                    shard(k).put(&bench_key(k), &value)?;
                }
            }
        }
        Ok(())
    }
}
