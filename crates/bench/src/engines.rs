//! Opens the evaluated stores behind the shared `KvStore` trait.

use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_btree::BTreeStore;
use pebblesdb_common::{Db, KvStore, PrefixDb, Result, StoreOptions, StorePreset};
use pebblesdb_env::{DiskEnv, Env, MemEnv};
use pebblesdb_lsm::LsmDb;

/// Which store an experiment runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The FLSM engine with paper-default options.
    PebblesDb,
    /// The FLSM engine with `max_sstables_per_guard = 1`.
    PebblesDb1,
    /// Baseline LSM with HyperLevelDB parameters.
    HyperLevelDb,
    /// Baseline LSM with LevelDB parameters.
    LevelDb,
    /// Baseline LSM with RocksDB parameters.
    RocksDb,
    /// The page-oriented B+Tree store (KyotoCabinet / WiredTiger stand-in).
    BTree,
}

impl EngineKind {
    /// Every engine, in the order the paper's figures list them.
    pub fn all() -> Vec<EngineKind> {
        vec![
            EngineKind::PebblesDb,
            EngineKind::HyperLevelDb,
            EngineKind::LevelDb,
            EngineKind::RocksDb,
            EngineKind::BTree,
            EngineKind::PebblesDb1,
        ]
    }

    /// The four stores compared throughout the paper's figures.
    pub fn paper_four() -> Vec<EngineKind> {
        vec![
            EngineKind::PebblesDb,
            EngineKind::HyperLevelDb,
            EngineKind::LevelDb,
            EngineKind::RocksDb,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::PebblesDb => "PebblesDB",
            EngineKind::PebblesDb1 => "PebblesDB-1",
            EngineKind::HyperLevelDb => "HyperLevelDB",
            EngineKind::LevelDb => "LevelDB",
            EngineKind::RocksDb => "RocksDB",
            EngineKind::BTree => "BTree",
        }
    }

    /// Parses a `--engine` flag value.
    pub fn from_flag(value: &str) -> Option<EngineKind> {
        match value.to_ascii_lowercase().as_str() {
            "pebblesdb" | "pebbles" | "flsm" => Some(EngineKind::PebblesDb),
            "pebblesdb-1" | "pebblesdb1" => Some(EngineKind::PebblesDb1),
            "hyperleveldb" | "hyper" => Some(EngineKind::HyperLevelDb),
            "leveldb" => Some(EngineKind::LevelDb),
            "rocksdb" => Some(EngineKind::RocksDb),
            "btree" | "wiredtiger" | "kyotocabinet" => Some(EngineKind::BTree),
            _ => None,
        }
    }
}

/// Benchmark options: the paper-preset parameters scaled down by
/// `scale_divisor` so multi-level behaviour appears at laptop-size datasets.
pub fn scaled_options(kind: EngineKind, scale_divisor: usize) -> StoreOptions {
    let preset = match kind {
        EngineKind::PebblesDb => StorePreset::PebblesDb,
        EngineKind::PebblesDb1 => StorePreset::PebblesDb1,
        EngineKind::HyperLevelDb => StorePreset::HyperLevelDb,
        EngineKind::LevelDb => StorePreset::LevelDb,
        EngineKind::RocksDb => StorePreset::RocksDb,
        EngineKind::BTree => StorePreset::LevelDb,
    };
    let mut options = StoreOptions::with_preset(preset).scale_down(scale_divisor);
    // Guard density is tuned for the scaled-down key counts used in the
    // harness (tens of thousands to a few million keys): roughly a few dozen
    // guards in the deepest populated level, as in the paper's configuration.
    options.top_level_bits = 14;
    options.bit_decrement = 2;
    // Keep output sstables reasonably sized and the table cache large enough
    // that reads are not dominated by re-opening files at bench scale.
    options.max_file_size = options.max_file_size.max(256 << 10);
    options.block_cache_capacity = options.block_cache_capacity.max(2 << 20);
    options.max_open_files = 8192;
    // Parallel seeks pay off when last-level sstables sit on a cold device;
    // the default bench environment is in-memory, where spawning the seek
    // threads costs more than it saves, so the harness turns them off. The
    // ablation binary re-enables them explicitly.
    options.enable_parallel_seeks = false;
    options
}

/// Opens the engine `kind` in `dir` using `env`.
pub fn open_engine(
    kind: EngineKind,
    env: Arc<dyn Env>,
    dir: &Path,
    scale_divisor: usize,
) -> Result<Arc<dyn KvStore>> {
    open_engine_with_options(kind, env, dir, scaled_options(kind, scale_divisor))
}

/// Opens the engine `kind` with explicit (already scaled) options — used by
/// drivers that override individual knobs such as `compaction_threads`.
pub fn open_engine_with_options(
    kind: EngineKind,
    env: Arc<dyn Env>,
    dir: &Path,
    options: StoreOptions,
) -> Result<Arc<dyn KvStore>> {
    Ok(match kind {
        EngineKind::PebblesDb | EngineKind::PebblesDb1 => {
            Arc::new(PebblesDb::open_with_options(env, dir, options)?)
        }
        EngineKind::HyperLevelDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::HyperLevelDb,
        )?),
        EngineKind::LevelDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::LevelDb,
        )?),
        EngineKind::RocksDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::RocksDb,
        )?),
        EngineKind::BTree => Arc::new(BTreeStore::open(env, dir, options)?),
    })
}

/// Opens the engine `kind` as a multi-namespace [`Db`]. The LSM-family
/// engines provide column families natively (chassis feature); the B+Tree
/// serves them through the shared key-prefix emulation.
pub fn open_db(
    kind: EngineKind,
    env: Arc<dyn Env>,
    dir: &Path,
    scale_divisor: usize,
) -> Result<Arc<dyn Db>> {
    open_db_with_options(kind, env, dir, scaled_options(kind, scale_divisor))
}

/// Like [`open_db`] with explicit (already scaled) options.
pub fn open_db_with_options(
    kind: EngineKind,
    env: Arc<dyn Env>,
    dir: &Path,
    options: StoreOptions,
) -> Result<Arc<dyn Db>> {
    Ok(match kind {
        EngineKind::PebblesDb | EngineKind::PebblesDb1 => {
            Arc::new(PebblesDb::open_with_options(env, dir, options)?)
        }
        EngineKind::HyperLevelDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::HyperLevelDb,
        )?),
        EngineKind::LevelDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::LevelDb,
        )?),
        EngineKind::RocksDb => Arc::new(LsmDb::open_with_options(
            env,
            dir,
            options,
            StorePreset::RocksDb,
        )?),
        EngineKind::BTree => Arc::new(PrefixDb::new(Arc::new(BTreeStore::open(
            env, dir, options,
        )?))),
    })
}

/// Opens the engine `kind` as a [`ShardedDb`](pebblesdb_shard::ShardedDb)
/// facade over `config.shards` independent instances (each with its own
/// WAL, flush thread and compaction pool) in `shard-<i>/` subdirectories of
/// `dir`. Only the LSM-family engines shard — the B+Tree has no shape
/// policy to replicate.
pub fn open_sharded_db_with_options(
    kind: EngineKind,
    env: Arc<dyn Env>,
    dir: &Path,
    options: StoreOptions,
    config: pebblesdb_shard::ShardConfig,
) -> Result<Arc<dyn Db>> {
    let preset = match kind {
        EngineKind::PebblesDb | EngineKind::PebblesDb1 => {
            return Ok(Arc::new(PebblesDb::open_sharded(
                env, dir, options, config,
            )?));
        }
        EngineKind::HyperLevelDb => StorePreset::HyperLevelDb,
        EngineKind::LevelDb => StorePreset::LevelDb,
        EngineKind::RocksDb => StorePreset::RocksDb,
        EngineKind::BTree => {
            return Err(pebblesdb_common::Error::invalid_argument(
                "--shards requires an LSM-family engine",
            ));
        }
    };
    Ok(Arc::new(LsmDb::open_sharded(
        env, dir, options, preset, config,
    )?))
}

/// Creates the environment requested by `--env` (`mem` or `disk`).
///
/// Disk runs use a per-engine directory under the system temp directory (or
/// `--dir` if given); memory runs are hermetic and are the default, matching
/// the fully-cached configuration used for unit-scale runs.
pub fn open_bench_env(
    env_kind: &str,
    engine: EngineKind,
    dir_flag: &str,
) -> (Arc<dyn Env>, std::path::PathBuf) {
    let (env, _, dir) = open_bench_env_full(env_kind, engine, dir_flag);
    (env, dir)
}

/// Like [`open_bench_env`] but also hands back the concrete [`MemEnv`] (when
/// the environment is in-memory) so drivers can use its fault-injection
/// hooks — e.g. adding per-append sstable latency to emulate a slow device.
pub fn open_bench_env_full(
    env_kind: &str,
    engine: EngineKind,
    dir_flag: &str,
) -> (Arc<dyn Env>, Option<MemEnv>, std::path::PathBuf) {
    match env_kind {
        "disk" => {
            let base = if dir_flag.is_empty() {
                std::env::temp_dir().join("pebblesdb-bench")
            } else {
                std::path::PathBuf::from(dir_flag)
            };
            let dir = base.join(format!("{}-{}", engine.name(), std::process::id()));
            let env = DiskEnv::new();
            let _ = env.remove_dir_all(&dir);
            (Arc::new(env), None, dir)
        }
        _ => {
            let mem = MemEnv::new();
            (
                Arc::new(mem.clone()),
                Some(mem),
                std::path::PathBuf::from(format!("/bench/{}", engine.name())),
            )
        }
    }
}
