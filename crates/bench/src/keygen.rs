//! Benchmark key and value generation.
//!
//! One module defines the key space for every harness: the local
//! `db_bench`-style workloads in [`crate::workloads`] and the networked
//! `net_bench` client both draw from here, so a store filled by one can be
//! read by the other (and results are comparable across the two paths).

use rand::Rng;

/// Formats benchmark keys exactly like `db_bench` (16-byte zero-padded).
pub fn bench_key(index: u64) -> Vec<u8> {
    format!("{index:016}").into_bytes()
}

/// Builds a pseudo-random value of `len` bytes for `index`.
///
/// The first eight bytes are the little-endian index, so a read can verify
/// it got the value written for that key.
pub fn bench_value(index: u64, len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut value = Vec::with_capacity(len);
    value.extend_from_slice(&index.to_le_bytes());
    while value.len() < len {
        value.push(rng.gen());
    }
    value.truncate(len);
    value
}

/// [`bench_value`] with a target compression ratio, LevelDB-bench style:
/// a random fragment of `len * ratio` bytes is repeated to fill the value,
/// so an ideal codec shrinks it to roughly `ratio` of its size. `ratio >= 1`
/// yields fully random (incompressible) bytes, identical to [`bench_value`].
///
/// The 8-byte little-endian index prefix is preserved in all cases so read
/// verification keeps working regardless of compressibility.
pub fn bench_value_compressible(index: u64, len: usize, ratio: f64, rng: &mut impl Rng) -> Vec<u8> {
    if ratio >= 1.0 || len <= 8 {
        return bench_value(index, len, rng);
    }
    let fragment_len = ((len as f64 * ratio) as usize).max(1);
    let fragment: Vec<u8> = (0..fragment_len).map(|_| rng.gen()).collect();
    let mut value = Vec::with_capacity(len);
    value.extend_from_slice(&index.to_le_bytes());
    while value.len() < len {
        let take = fragment.len().min(len - value.len());
        value.extend_from_slice(&fragment[..take]);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        assert_eq!(bench_key(0), b"0000000000000000".to_vec());
        assert_eq!(bench_key(42).len(), 16);
        let keys: Vec<_> = (0..1000).map(bench_key).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn values_embed_the_index_and_honour_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0, 4, 8, 100] {
            let value = bench_value(99, len, &mut rng);
            assert_eq!(value.len(), len);
        }
        let value = bench_value(99, 64, &mut rng);
        assert_eq!(u64::from_le_bytes(value[..8].try_into().unwrap()), 99);
    }

    #[test]
    fn compressible_values_keep_the_prefix_and_actually_compress() {
        let mut rng = StdRng::seed_from_u64(11);
        let value = bench_value_compressible(42, 4096, 0.25, &mut rng);
        assert_eq!(value.len(), 4096);
        assert_eq!(u64::from_le_bytes(value[..8].try_into().unwrap()), 42);
        let compressed = pebblesdb_compress::compress(&value);
        assert!(
            compressed.len() < value.len() / 2,
            "0.25-compressible value only shrank to {}/{}",
            compressed.len(),
            value.len()
        );

        // Ratio 1.0 behaves exactly like the incompressible generator.
        let incompressible = bench_value_compressible(42, 4096, 1.0, &mut rng);
        assert!(pebblesdb_compress::compress_if_worthwhile(&incompressible).is_none());
    }
}
