//! Benchmark key and value generation.
//!
//! One module defines the key space for every harness: the local
//! `db_bench`-style workloads in [`crate::workloads`] and the networked
//! `net_bench` client both draw from here, so a store filled by one can be
//! read by the other (and results are comparable across the two paths).

use rand::Rng;

/// Formats benchmark keys exactly like `db_bench` (16-byte zero-padded).
pub fn bench_key(index: u64) -> Vec<u8> {
    format!("{index:016}").into_bytes()
}

/// Builds a pseudo-random value of `len` bytes for `index`.
///
/// The first eight bytes are the little-endian index, so a read can verify
/// it got the value written for that key.
pub fn bench_value(index: u64, len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut value = Vec::with_capacity(len);
    value.extend_from_slice(&index.to_le_bytes());
    while value.len() < len {
        value.push(rng.gen());
    }
    value.truncate(len);
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        assert_eq!(bench_key(0), b"0000000000000000".to_vec());
        assert_eq!(bench_key(42).len(), 16);
        let keys: Vec<_> = (0..1000).map(bench_key).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn values_embed_the_index_and_honour_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0, 4, 8, 100] {
            let value = bench_value(99, len, &mut rng);
            assert_eq!(value.len(), len);
        }
        let value = bench_value(99, 64, &mut rng);
        assert_eq!(u64::from_le_bytes(value[..8].try_into().unwrap()), 99);
    }
}
