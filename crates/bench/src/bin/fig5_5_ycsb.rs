//! Figure 5.5: the YCSB suite (Load A, A–D, Load E, E, F) with four threads.
//!
//! The paper runs the suite with RocksDB-style parameters and reports
//! throughput per workload plus the total write IO: PebblesDB wins the
//! write-heavy phases (Load A, Load E, A) by 1.5–2x, roughly ties elsewhere,
//! and writes about half as much IO as RocksDB overall.

use std::sync::Arc;

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_kops, format_mib};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report};
use pebblesdb_common::KvStore;
use pebblesdb_ycsb::{run_workload, WorkloadKind};

fn main() {
    let args = Args::parse();
    let records = args.get_u64("records", 20_000);
    let operations = args.get_u64("operations", 10_000);
    let threads = args.get_u64("threads", 4) as usize;
    let value_size = args.get_u64("value-size", 1024) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let engines = [
        EngineKind::PebblesDb,
        EngineKind::HyperLevelDb,
        EngineKind::RocksDb,
    ];

    let mut report = Report::new(
        &format!(
            "Figure 5.5: YCSB with {threads} threads ({records} records, {operations} ops per workload, {value_size} B values)"
        ),
        {
            let mut cols = vec!["workload".to_string()];
            cols.extend(engines.iter().map(|e| format!("{} KOps/s", e.name())));
            cols
        },
    );

    let mut stores: Vec<Arc<dyn KvStore>> = Vec::new();
    for engine in engines {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        stores.push(open_engine(engine, env, &dir, scale).expect("open engine"));
    }

    for kind in WorkloadKind::all() {
        let ops = if kind.is_load() { records } else { operations };
        let mut row = vec![kind.name().to_string()];
        for store in &stores {
            let result = run_workload(Arc::clone(store), kind, records, ops, threads, value_size)
                .expect("ycsb run");
            row.push(format_kops(result.kops_per_second()));
        }
        report.add_row(row);
    }

    let mut io_row = vec!["Total write IO".to_string()];
    for store in &stores {
        store.flush().expect("flush");
        io_row.push(format_mib(store.stats().bytes_written));
    }
    report.add_row(io_row);

    report.add_note("Paper: PebblesDB ~1.5-2x RocksDB/HyperLevelDB on Load A, Load E and A; near parity on B/C/D/F; ~6% behind on E; total IO about half of RocksDB's.");
    report.print();
}
