//! Table 5.2: insert and update throughput (KOps/s) per store.
//!
//! The paper inserts 50M key-value pairs and then updates every key twice;
//! all stores slow down as the database grows, but PebblesDB retains most of
//! its initial throughput (drops to ~75%) while the others halve.

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::format_kops;
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 60_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let mut report = Report::new(
        &format!("Table 5.2: insert + two update rounds ({keys} keys, {value_size} B values)"),
        vec![
            "store".to_string(),
            "insert KOps/s".to_string(),
            "update round 1".to_string(),
            "update round 2".to_string(),
        ],
    );

    for engine in EngineKind::paper_four() {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_engine(engine, env, &dir, scale).expect("open engine");

        let insert = Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("insert");
        let update1 = Workload::Overwrite
            .run(&store, keys, 16, value_size, 1)
            .expect("update 1");
        let update2 = Workload::Overwrite
            .run(&store, keys, 16, value_size, 1)
            .expect("update 2");

        report.add_row(vec![
            engine.name().to_string(),
            format_kops(insert.kops_per_second()),
            format_kops(update1.kops_per_second()),
            format_kops(update2.kops_per_second()),
        ]);
    }

    report.add_note("Paper (50M x 1 KiB): PebblesDB 56/48/43 KOps/s, HyperLevelDB 40/25/20, LevelDB 22/12/12, RocksDB 14/8/7.");
    report.add_note("Expected shape: PebblesDB highest in every round and with the smallest relative drop between the insert round and update round 2.");
    report.print();
}
