//! Figure 5.2: environmental effects — an aged key-value store and a
//! low-memory configuration.
//!
//! * `--part aged`: the store is aged before measuring (bulk insert, then
//!   interleaved deletes and updates from multiple threads, as in §5.2
//!   "Impact of File-System and Key-Value Store Aging"). File-system aging is
//!   not reproducible in-process and is noted as a substitution in DESIGN.md.
//! * `--part lowmem`: the store runs with tiny caches relative to the
//!   dataset, mimicking the paper's `mem=4GB` boot parameter where DRAM is
//!   6 % of the dataset.

use std::sync::Arc;

use pebblesdb_bench::engines::{open_bench_env, scaled_options};
use pebblesdb_bench::report::format_kops;
use pebblesdb_bench::{Args, EngineKind, Report, Workload};
use pebblesdb_common::{KvStore, StorePreset};

fn open_with(
    engine: EngineKind,
    env: Arc<dyn pebblesdb_env::Env>,
    dir: &std::path::Path,
    scale: usize,
    lowmem: bool,
) -> Arc<dyn KvStore> {
    let mut options = scaled_options(engine, scale);
    if lowmem {
        options.block_cache_capacity = 64 << 10;
        options.write_buffer_size = 64 << 10;
        options.max_open_files = 50;
    }
    match engine {
        EngineKind::PebblesDb | EngineKind::PebblesDb1 => {
            Arc::new(pebblesdb::PebblesDb::open_with_options(env, dir, options).expect("open"))
        }
        EngineKind::BTree => {
            Arc::new(pebblesdb_btree::BTreeStore::open(env, dir, options).expect("open"))
        }
        EngineKind::HyperLevelDb | EngineKind::LevelDb | EngineKind::RocksDb => {
            let preset = match engine {
                EngineKind::LevelDb => StorePreset::LevelDb,
                EngineKind::RocksDb => StorePreset::RocksDb,
                _ => StorePreset::HyperLevelDb,
            };
            Arc::new(
                pebblesdb_lsm::LsmDb::open_with_options(env, dir, options, preset).expect("open"),
            )
        }
    }
}

fn age_store(store: &Arc<dyn KvStore>, keys: u64, value_size: usize) {
    // Four aging threads: insert, then delete 40% and update 40% in random
    // order, mirroring the paper's aging recipe at reduced scale.
    Workload::FillRandom
        .run(store, keys, 16, value_size, 4)
        .expect("age fill");
    Workload::DeleteRandom
        .run(store, keys * 2 / 5, 16, value_size, 4)
        .expect("age delete");
    Workload::Overwrite
        .run(store, keys * 2 / 5, 16, value_size, 4)
        .expect("age update");
    store.flush().expect("flush");
}

fn run(args: &Args, part: &str) {
    let keys = args.get_u64("keys", 40_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let lowmem = part == "lowmem";

    let mut report = Report::new(
        &format!(
            "Figure 5.2 ({part}): writes / reads / seeks after environmental stress ({keys} keys)"
        ),
        vec![
            "store".to_string(),
            "write KOps/s".to_string(),
            "read KOps/s".to_string(),
            "seek KOps/s".to_string(),
        ],
    );

    for engine in EngineKind::paper_four() {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_with(engine, env, &dir, scale, lowmem);
        if part == "aged" {
            age_store(&store, keys, value_size);
        }
        let writes = Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("writes");
        store.flush().expect("flush");
        let reads = Workload::ReadRandom
            .run(&store, keys / 2, 16, value_size, 1)
            .expect("reads");
        let seeks = Workload::SeekRandom
            .run(&store, keys / 4, 16, value_size, 1)
            .expect("seeks");
        report.add_row(vec![
            engine.name().to_string(),
            format_kops(writes.kops_per_second()),
            format_kops(reads.kops_per_second()),
            format_kops(seeks.kops_per_second()),
        ]);
    }
    match part {
        "aged" => report.add_note("Paper: on an aged store PebblesDB's write advantage drops from 2.7x to ~2x, reads stay ~8% ahead, and range queries pay ~40%."),
        _ => report.add_note("Paper: with DRAM at 6% of the dataset PebblesDB keeps a 64% write and 63% read advantage but loses ~40% on range queries."),
    }
    report.print();
}

fn main() {
    let args = Args::parse();
    match args.get_str("part", "all").as_str() {
        "aged" => run(&args, "aged"),
        "lowmem" => run(&args, "lowmem"),
        _ => {
            run(&args, "aged");
            run(&args, "lowmem");
        }
    }
}
