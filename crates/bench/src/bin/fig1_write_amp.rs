//! Figure 1.1 / Figure 5.1(a): write IO and write amplification per store.
//!
//! The paper inserts or updates 10M–500M key-value pairs (16 B keys, 128 B
//! values) and reports total write IO in GB with the write amplification in
//! parentheses; PebblesDB writes ~2.5x less than RocksDB/HyperLevelDB. This
//! binary reproduces the experiment at laptop scale (`--keys`, default 100k)
//! and prints the same series.

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_mib, format_ratio};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 200_000);
    let value_size = args.get_u64("value-size", 128) as usize;
    let scale = args.get_u64("scale-divisor", 64) as usize;

    let mut report = Report::new(
        &format!("Figure 1.1 / 5.1(a): write amplification ({keys} random inserts, {value_size} B values)"),
        vec![
            "store".to_string(),
            "user data".to_string(),
            "write IO".to_string(),
            "write amp".to_string(),
        ],
    );

    let mut engines = EngineKind::paper_four();
    engines.push(EngineKind::BTree);
    for engine in engines {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_engine(engine, env, &dir, scale).expect("open engine");
        Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("fill");
        store.flush().expect("flush");
        let stats = store.stats();
        report.add_row(vec![
            engine.name().to_string(),
            format_mib(stats.user_bytes_written),
            format_mib(stats.bytes_written),
            format_ratio(stats.write_amplification()),
        ]);
    }

    report.add_note("Paper (500M keys): PebblesDB ~128 GB, LevelDB ~210 GB, HyperLevelDB/RocksDB ~320 GB; KyotoCabinet-style B-trees are far worse (61x).");
    report.add_note("Expected shape: PebblesDB lowest, LevelDB next, HyperLevelDB/RocksDB higher, BTree highest.");
    report.print();
}
