//! `net_bench` — the networked companion to `db_bench`.
//!
//! Drives N concurrent RESP connections through fill / read / mixed
//! workloads and reports throughput plus client-observed latency
//! percentiles (p50/p99/p999). Keys and values come from
//! [`pebblesdb_bench::keygen`], the same generators the local workloads
//! use, so a store filled over the network is readable by `db_bench` and
//! vice versa.
//!
//! ```text
//! net_bench --spawn --clients 8 --ops 20000            # in-process server
//! net_bench --addr 127.0.0.1:6380 --workload mixed     # external server
//! net_bench --spawn --rate-limit 500 --burst 50        # observe BUSY backpressure
//! net_bench --spawn --follower                         # leader + replica lag/read phase
//! ```
//!
//! `--follower` appends a replication phase: a [`FollowerDb`] is attached
//! to the server over `SYNC` while the write clients keep loading the
//! leader, a local reader measures replica read latency at the applied
//! frontier, and a sampler records replication lag (leader committed
//! sequence minus follower applied sequence). The phase ends by timing how
//! long the replica takes to drain the remaining backlog once writes stop.
//!
//! `BUSY` replies from the server's rate limiter are counted (and retried
//! up to a bound) rather than treated as failures: they are backpressure,
//! and the `busy` column shows how much of it the run absorbed.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebblesdb_bench::keygen::{bench_key, bench_value_compressible};
use pebblesdb_bench::report::{format_kops, Report};
use pebblesdb_bench::Args;
use pebblesdb_common::resp::RespValue;
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_server::{RateLimit, RespClient, Server, ServerConfig};
use pebblesdb_ycsb::Histogram;

const USAGE: &str = "net_bench [options]
  --addr HOST:PORT       benchmark an already-running server
  --spawn                spawn an in-process in-memory server (default)
  --clients N            concurrent connections (default 8)
  --ops N                operations per workload phase (default 10000)
  --value-size BYTES     value payload size (default 100)
  --workload NAME        fill | read | mixed | all (default all)
  --rate-limit OPS       with --spawn: per-connection rate limit
  --burst OPS            with --spawn: rate-limit burst (default rate/10)
  --shards N             with --spawn: serve a ShardedDb of N shards (default 0 = unsharded)
  --compression on|off   with --spawn: block + vlog compression (default off)
  --compressibility R    generated values shrink to ~R of their size under an ideal codec (default 1.0)
  --write-latency-us US  with --spawn: inject latency per sstable write
  --sync                 with --spawn: fsync acknowledged writes
  --follower             attach a read replica; measure lag + replica read latency
  --help                 print this help";

/// Per-phase aggregate over all clients.
struct PhaseResult {
    name: &'static str,
    operations: u64,
    seconds: f64,
    latencies_us: Histogram,
    busy: u64,
}

fn main() {
    let args = Args::parse();
    if args.has_flag("help") {
        println!("{USAGE}");
        return;
    }
    let clients = args.get_u64("clients", 8).max(1) as usize;
    let ops = args.get_u64("ops", 10_000).max(1);
    let value_size = args.get_u64("value-size", 100) as usize;
    let compressibility = args.get_f64("compressibility", 1.0);
    let workload = args.get_str("workload", "all");

    // Either connect out, or spawn an in-process server on an ephemeral
    // port (which is what the CI smoke job uses: no port plumbing).
    let addr_flag = args.get_str("addr", "");
    let (server, addr) = if addr_flag.is_empty() {
        let mem = Arc::new(MemEnv::new());
        let write_latency_us = args.get_u64("write-latency-us", 0);
        if write_latency_us > 0 {
            mem.set_write_latency_micros_for(".sst", write_latency_us);
        }
        let env: Arc<dyn Env> = mem;
        // `--shards N` serves a hash-sharded store through the same RESP
        // front-end — the server code is unchanged, only the Db behind it.
        let shards = args.get_u64("shards", 0) as usize;
        let mut options = pebblesdb_common::StoreOptions::default();
        options.compression =
            pebblesdb_common::CompressionType::parse(&args.get_str("compression", "off"))
                .expect("unknown --compression (on|off|lz|none)");
        let db: Arc<dyn pebblesdb_common::Db> = if shards > 0 {
            let config = pebblesdb_shard::ShardConfig {
                shards,
                ..Default::default()
            };
            Arc::new(
                pebblesdb::PebblesDb::open_sharded(env, Path::new("/net-bench"), options, config)
                    .expect("open sharded store"),
            )
        } else {
            Arc::new(
                pebblesdb::PebblesDb::open_with_options(env, Path::new("/net-bench"), options)
                    .expect("open store"),
            )
        };
        let mut config = ServerConfig::default();
        config.session.sync_writes = args.has_flag("sync");
        let rate = args.get_u64("rate-limit", 0);
        if rate > 0 {
            config.rate_limit = Some(RateLimit {
                ops_per_sec: rate as f64,
                burst: args.get_u64("burst", (rate / 10).max(1)) as f64,
            });
        }
        let server = Server::start(db, config).expect("start in-process server");
        let addr = server.local_addr();
        (Some(server), addr)
    } else {
        let addr = addr_flag.parse().expect("--addr must be HOST:PORT");
        (None, addr)
    };

    let phases: Vec<&str> = match workload.as_str() {
        "all" => vec!["fill", "read", "mixed"],
        one @ ("fill" | "read" | "mixed") => vec![one],
        other => {
            eprintln!("error: unknown workload {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let mut report = Report::new(
        &format!("net_bench — {addr} ({clients} clients, {ops} ops/phase, {value_size} B values)"),
        [
            "workload", "ops", "kops/s", "p50 us", "p99 us", "p999 us", "max us", "busy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for phase in phases {
        let result = run_phase(phase, addr, clients, ops, value_size, compressibility);
        report.add_row(vec![
            result.name.to_string(),
            result.operations.to_string(),
            format_kops(result.operations as f64 / result.seconds / 1000.0),
            result.latencies_us.percentile(50.0).to_string(),
            result.latencies_us.percentile(99.0).to_string(),
            result.latencies_us.percentile(99.9).to_string(),
            result.latencies_us.max().to_string(),
            result.busy.to_string(),
        ]);
    }
    report.add_note("latencies are client-observed round trips; BUSY replies are retried (bounded) and counted, not failed.");
    if args.has_flag("follower") {
        run_follower_phase(&mut report, addr, clients, ops, value_size, compressibility);
    }
    report.print();

    if let Some(server) = server {
        server.shutdown();
    }
}

/// The `--follower` phase: attach a replica over `SYNC`, keep the write
/// clients loading the leader, and measure what a read replica actually
/// delivers — local read latency at its applied frontier and replication
/// lag in sequence numbers — then time the final catch-up drain.
fn run_follower_phase(
    report: &mut Report,
    addr: std::net::SocketAddr,
    clients: usize,
    ops: u64,
    value_size: usize,
    compressibility: f64,
) {
    use pebblesdb_common::KvStore;

    let follower = pebblesdb_replica::FollowerDb::open_with(
        pebblesdb::FlsmPolicy::new,
        Arc::new(MemEnv::new()) as Arc<dyn Env>,
        Path::new("/net-bench-follower"),
        pebblesdb_common::StoreOptions::default(),
        pebblesdb_replica::FollowerConfig {
            leader_addr: addr.to_string(),
            ..Default::default()
        },
    )
    .expect("attach follower");
    let follower = Arc::new(follower);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Replica-side reader: local gets against the follower's applied
    // frontier, sampling the key space the writers are filling.
    let reader = {
        let follower = Arc::clone(&follower);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xf011_04e4);
            let mut latencies = Histogram::new();
            let mut hits = 0u64;
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let key = bench_key(rng.gen_range(0..ops.max(1)));
                let started = Instant::now();
                if follower.get(&key).expect("follower read").is_some() {
                    hits += 1;
                }
                latencies.record(started.elapsed().as_micros() as u64);
                reads += 1;
            }
            (latencies, reads, hits)
        })
    };

    // Lag sampler, every 5 ms. `lag_batches` is the backlog the leader
    // advertises on every shipped frame — commits not yet handed to this
    // replica — which is the honest lag signal; `leader_sequence()` minus
    // `applied_sequence()` only sees frames already in flight.
    let sampler = {
        let follower = Arc::clone(&follower);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut lag = Histogram::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                lag.record(follower.lag_batches());
                std::thread::sleep(Duration::from_millis(5));
            }
            lag
        })
    };

    // The same concurrent RESP write load the fill phase uses.
    let writes = run_phase("fill", addr, clients, ops, value_size, compressibility);

    // Writes are done: time how long the replica needs to drain the rest.
    // While behind, the last received frame's sequence trails the leader's
    // true frontier, so "caught up" means the advertised backlog hit zero
    // AND an idle ping confirmed the frontier matches what we applied.
    let drain_started = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(120);
    while follower.lag_batches() > 0
        || follower.leader_sequence() == 0
        || follower.applied_sequence() < follower.leader_sequence()
    {
        assert!(
            Instant::now() < deadline,
            "follower never caught up: applied={} leader={} connected={} last_error={:?}",
            follower.applied_sequence(),
            follower.leader_sequence(),
            follower.is_connected(),
            follower.last_error(),
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let drain = drain_started.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (read_latencies, reads, hits) = reader.join().expect("follower reader panicked");
    let lag = sampler.join().expect("lag sampler panicked");

    report.add_row(vec![
        "leader-fill".to_string(),
        writes.operations.to_string(),
        format_kops(writes.operations as f64 / writes.seconds / 1000.0),
        writes.latencies_us.percentile(50.0).to_string(),
        writes.latencies_us.percentile(99.0).to_string(),
        writes.latencies_us.percentile(99.9).to_string(),
        writes.latencies_us.max().to_string(),
        writes.busy.to_string(),
    ]);
    report.add_row(vec![
        "follower-read".to_string(),
        reads.to_string(),
        format_kops(reads as f64 / writes.seconds.max(drain.as_secs_f64()) / 1000.0),
        read_latencies.percentile(50.0).to_string(),
        read_latencies.percentile(99.0).to_string(),
        read_latencies.percentile(99.9).to_string(),
        read_latencies.max().to_string(),
        "0".to_string(),
    ]);
    report.add_note(&format!(
        "replication lag (batches behind leader): p50 {} / p99 {} / max {}; \
         drained in {} ms after writes stopped; applied seq {}, {} batches \
         applied, follower read hit rate {:.1}%",
        lag.percentile(50.0),
        lag.percentile(99.0),
        lag.max(),
        drain.as_millis(),
        follower.applied_sequence(),
        follower.batches_applied(),
        100.0 * hits as f64 / reads.max(1) as f64,
    ));
}

fn run_phase(
    name: &str,
    addr: std::net::SocketAddr,
    clients: usize,
    ops: u64,
    value_size: usize,
    compressibility: f64,
) -> PhaseResult {
    let ops_per_client = ops.div_ceil(clients as u64);
    let total_keys = ops_per_client * clients as u64;
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let name = name.to_string();
            std::thread::spawn(move || {
                let mut conn = RespClient::connect(addr).expect("connect");
                conn.set_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut rng = StdRng::seed_from_u64(0xbeef_0000 + client as u64);
                let mut latencies = Histogram::new();
                let mut busy = 0u64;
                let base = client as u64 * ops_per_client;
                for i in 0..ops_per_client {
                    // fill covers a private slice of the key space; read and
                    // mixed sample the whole (filled) space.
                    let write_key = base + i;
                    let read_key = rng.gen_range(0..total_keys);
                    let value =
                        bench_value_compressible(write_key, value_size, compressibility, &mut rng);
                    let op_started = Instant::now();
                    let write = match name.as_str() {
                        "fill" => true,
                        "read" => false,
                        _ => rng.gen_bool(0.5),
                    };
                    let (key, index) = if write {
                        (bench_key(write_key), write_key)
                    } else {
                        (bench_key(read_key), read_key)
                    };
                    // A BUSY reply is backpressure: back off briefly and
                    // retry the same op a bounded number of times.
                    let mut attempts = 0;
                    loop {
                        let reply = if write {
                            conn.command(&[b"SET", &key, &value]).expect("SET")
                        } else {
                            conn.command(&[b"GET", &key]).expect("GET")
                        };
                        match reply {
                            RespValue::Error(msg) if msg.starts_with("BUSY") => {
                                busy += 1;
                                attempts += 1;
                                if attempts >= 50 {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            RespValue::Error(msg) => panic!("op {index} failed: {msg}"),
                            _ => break,
                        }
                    }
                    latencies.record(op_started.elapsed().as_micros() as u64);
                }
                (latencies, busy)
            })
        })
        .collect();

    let mut latencies_us = Histogram::new();
    let mut busy = 0;
    for worker in workers {
        let (worker_latencies, worker_busy) = worker.join().expect("bench client panicked");
        latencies_us.merge(&worker_latencies);
        busy += worker_busy;
    }
    PhaseResult {
        name: match name {
            "fill" => "fill",
            "read" => "read",
            _ => "mixed",
        },
        operations: total_keys,
        seconds: started.elapsed().as_secs_f64().max(1e-9),
        latencies_us,
        busy,
    }
}
