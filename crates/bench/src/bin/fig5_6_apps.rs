//! Figure 5.6: NoSQL applications (HyperDex-like and MongoDB-like layers)
//! running YCSB over different storage engines.
//!
//! * `--app hyperdex`: the HyperDex-like layer (read-before-write + client
//!   latency) over HyperLevelDB vs PebblesDB — Figure 5.6(a).
//! * `--app mongo`: the MongoDB-like layer over WiredTiger (modelled by the
//!   B+Tree engine), RocksDB and PebblesDB — Figure 5.6(b).

use std::sync::Arc;

use pebblesdb_apps::{HyperDexLike, MongoLike};
use pebblesdb_bench::engines::{open_bench_env, open_db};
use pebblesdb_bench::report::{format_kops, format_mib};
use pebblesdb_bench::{Args, EngineKind, Report};
use pebblesdb_common::{Db, KvStore};
use pebblesdb_ycsb::{run_workload, WorkloadKind};

fn wrap(app: &str, engine_db: Arc<dyn Db>, latency_micros: u64) -> Arc<dyn KvStore> {
    match app {
        "hyperdex" => Arc::new(
            HyperDexLike::new(engine_db, latency_micros).expect("create hyperdex families"),
        ),
        _ => Arc::new(MongoLike::new(engine_db, latency_micros).expect("create mongo collection")),
    }
}

fn run(args: &Args, app: &str) {
    let records = args.get_u64("records", 10_000);
    let operations = args.get_u64("operations", 5_000);
    let threads = args.get_u64("threads", 4) as usize;
    let value_size = args.get_u64("value-size", 1024) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    // The paper measures ~130 us of application-side latency per HyperDex op;
    // scaled down so laptop runs finish quickly but the effect is visible.
    let latency = args.get_u64("app-latency-micros", 20);

    let engines: Vec<EngineKind> = if app == "hyperdex" {
        vec![EngineKind::HyperLevelDb, EngineKind::PebblesDb]
    } else {
        vec![
            EngineKind::BTree,
            EngineKind::RocksDb,
            EngineKind::PebblesDb,
        ]
    };

    let mut report = Report::new(
        &format!(
            "Figure 5.6 ({app}): YCSB through the application layer ({records} records, {operations} ops, {threads} threads)"
        ),
        {
            let mut cols = vec!["workload".to_string()];
            cols.extend(engines.iter().map(|e| format!("{} KOps/s", e.name())));
            cols
        },
    );

    let mut stacks: Vec<Arc<dyn KvStore>> = Vec::new();
    for &engine in &engines {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_db(engine, env, &dir, scale).expect("open engine");
        stacks.push(wrap(app, store, latency));
    }

    let workloads = [
        WorkloadKind::LoadA,
        WorkloadKind::A,
        WorkloadKind::B,
        WorkloadKind::C,
        WorkloadKind::D,
        WorkloadKind::F,
        WorkloadKind::LoadE,
        WorkloadKind::E,
    ];
    for kind in workloads {
        let ops = if kind.is_load() { records } else { operations };
        let mut row = vec![kind.name().to_string()];
        for stack in &stacks {
            let result = run_workload(Arc::clone(stack), kind, records, ops, threads, value_size)
                .expect("ycsb run");
            row.push(format_kops(result.kops_per_second()));
        }
        report.add_row(row);
    }

    let mut io_row = vec!["Total write IO".to_string()];
    for stack in &stacks {
        stack.flush().expect("flush");
        io_row.push(format_mib(stack.stats().bytes_written));
    }
    report.add_row(io_row);

    if app == "hyperdex" {
        report.add_note("Paper 5.6(a): PebblesDB improves HyperDex throughput on every workload (up to +59% on Load E) while writing less IO; gains are capped by HyperDex's read-before-write behaviour.");
    } else {
        report.add_note("Paper 5.6(b): both LSM engines beat WiredTiger everywhere; PebblesDB matches RocksDB's throughput while writing ~40% less IO (and 4% less than WiredTiger).");
    }
    report.print();
}

fn main() {
    let args = Args::parse();
    match args.get_str("app", "all").as_str() {
        "hyperdex" => run(&args, "hyperdex"),
        "mongo" => run(&args, "mongo"),
        _ => {
            run(&args, "hyperdex");
            run(&args, "mongo");
        }
    }
}
