//! Figure 5.4: time-series data and the impact of empty guards.
//!
//! The paper repeats twenty iterations of: insert a window of keys, read
//! them, delete them all, then move to the next (higher) key window. Guards
//! created for old windows become empty; the experiment shows PebblesDB's
//! read throughput does not degrade as thousands of empty guards accumulate.

use std::time::Instant;

use pebblesdb::PebblesDb;
use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::format_kops;
use pebblesdb_bench::workloads::{bench_key, bench_value};
use pebblesdb_bench::{scaled_options, Args, EngineKind, Report};
use pebblesdb_common::KvStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let window = args.get_u64("keys", 20_000);
    let iterations = args.get_u64("iterations", 8);
    let value_size = args.get_u64("value-size", 512) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let engine = EngineKind::PebblesDb;
    let (env, dir) = open_bench_env(
        &args.get_str("env", "mem"),
        engine,
        &args.get_str("dir", ""),
    );
    let store =
        PebblesDb::open_with_options(env, &dir, scaled_options(engine, scale)).expect("open");

    let mut report = Report::new(
        &format!("Figure 5.4: time-series windows ({iterations} iterations x {window} keys)"),
        vec![
            "iteration".to_string(),
            "write KOps/s".to_string(),
            "read KOps/s".to_string(),
            "stall ms".to_string(),
            "empty guards".to_string(),
        ],
    );

    let mut rng = StdRng::seed_from_u64(7);
    let mut stall_micros_seen = 0u64;
    for iteration in 0..iterations {
        let base = iteration * window;

        let write_start = Instant::now();
        for i in 0..window {
            store
                .put(&bench_key(base + i), &bench_value(i, value_size, &mut rng))
                .expect("put");
        }
        let write_kops = window as f64 / write_start.elapsed().as_secs_f64() / 1000.0;

        let read_start = Instant::now();
        let reads = window / 2;
        for _ in 0..reads {
            let k = base + rng.gen_range(0..window);
            let _ = store.get(&bench_key(k)).expect("get");
        }
        let read_kops = reads as f64 / read_start.elapsed().as_secs_f64() / 1000.0;

        for i in 0..window {
            store.delete(&bench_key(base + i)).expect("delete");
        }
        store.flush().expect("flush");

        let stall_total = store.stats().write_stall_micros;
        let stall_this_iteration = stall_total.saturating_sub(stall_micros_seen);
        stall_micros_seen = stall_total;

        report.add_row(vec![
            (iteration + 1).to_string(),
            format_kops(write_kops),
            format_kops(read_kops),
            format!("{:.1}", stall_this_iteration as f64 / 1000.0),
            store.empty_guards().to_string(),
        ]);
    }

    report.add_note(&format!(
        "final guards per level (sentinel included): {:?}",
        store.guards_per_level()
    ));
    report.add_note("Paper: read throughput stays between 70 and 90 KOps/s across all twenty iterations even with ~9000 empty guards accumulated.");
    report.add_note("Expected shape: per-iteration write/read throughput stays flat while the empty-guard count grows.");
    report.print();
}
