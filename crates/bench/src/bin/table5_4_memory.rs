//! Table 5.4 and §5.5: memory consumption and compaction CPU share.
//!
//! The paper reports resident memory during write, read and seek workloads
//! (PebblesDB uses ~300 MB more than HyperLevelDB, dominated by sstable-level
//! bloom filters) and a higher compaction CPU share (~171% of one core vs
//! ~100% for the others) because PebblesDB compacts more aggressively.
//! This binary reports the store-controlled memory (memtables + bloom
//! filters + block cache) and the fraction of wall-clock time spent in
//! compaction.

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_mib, format_ratio};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 60_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let mut report = Report::new(
        &format!(
            "Table 5.4 / §5.5: memory and compaction CPU ({keys} writes, then reads and seeks)"
        ),
        vec![
            "store".to_string(),
            "mem after writes".to_string(),
            "mem after reads".to_string(),
            "mem after seeks".to_string(),
            "compaction share".to_string(),
        ],
    );

    for engine in [
        EngineKind::PebblesDb,
        EngineKind::HyperLevelDb,
        EngineKind::RocksDb,
    ] {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_engine(engine, env, &dir, scale).expect("open engine");

        let start = std::time::Instant::now();
        Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("writes");
        store.flush().expect("flush");
        let mem_writes = store.stats().memory_usage_bytes;

        Workload::ReadRandom
            .run(&store, keys / 4, 16, value_size, 1)
            .expect("reads");
        let mem_reads = store.stats().memory_usage_bytes;

        Workload::SeekRandom
            .run(&store, keys / 8, 16, value_size, 1)
            .expect("seeks");
        let stats = store.stats();
        let wall = start.elapsed().as_micros() as f64;
        let compaction_share = if wall == 0.0 {
            0.0
        } else {
            stats.compaction_micros as f64 / wall
        };

        report.add_row(vec![
            engine.name().to_string(),
            format_mib(mem_writes),
            format_mib(mem_reads),
            format_mib(stats.memory_usage_bytes),
            format!("{}x of wall clock", format_ratio(compaction_share)),
        ]);
    }

    report.add_note("Paper (Table 5.4, MB): writes P=434 H=159 R=896; reads P=500 H=154 R=36; seeks P=430 H=111 R=34. §5.5: PebblesDB compaction CPU ~171% vs ~100%.");
    report.add_note("Expected shape: PebblesDB uses more store-controlled memory than HyperLevelDB (bloom filters + larger caches kept hot) and spends relatively more time compacting.");
    report.print();
}
