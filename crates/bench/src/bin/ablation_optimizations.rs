//! §5.2 "Impact of Different Optimizations": ablation of the PebblesDB
//! read-side techniques.
//!
//! The paper reports that, over FLSM without any optimisation, seek-based
//! compaction alone removes most of the range-query overhead (66% -> 7%),
//! parallel seeks help less (66% -> 48%), and sstable-level bloom filters
//! improve point reads by ~63%. This binary toggles the corresponding
//! `StoreOptions` flags and reports read and seek throughput for each
//! configuration.

use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::format_kops;
use pebblesdb_bench::{scaled_options, Args, EngineKind, Report, Workload};
use pebblesdb_common::KvStore;

struct Variant {
    name: &'static str,
    bloom: bool,
    parallel_seeks: bool,
    seek_compaction: bool,
    aggressive: bool,
}

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 50_000);
    let value_size = args.get_u64("value-size", 512) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let variants = [
        Variant {
            name: "no optimizations",
            bloom: false,
            parallel_seeks: false,
            seek_compaction: false,
            aggressive: false,
        },
        Variant {
            name: "+ sstable bloom filters",
            bloom: true,
            parallel_seeks: false,
            seek_compaction: false,
            aggressive: false,
        },
        Variant {
            name: "+ parallel seeks",
            bloom: true,
            parallel_seeks: true,
            seek_compaction: false,
            aggressive: false,
        },
        Variant {
            name: "+ seek compaction",
            bloom: true,
            parallel_seeks: true,
            seek_compaction: true,
            aggressive: false,
        },
        Variant {
            name: "full PebblesDB",
            bloom: true,
            parallel_seeks: true,
            seek_compaction: true,
            aggressive: true,
        },
    ];

    let mut report = Report::new(
        &format!("§5.2 ablation: PebblesDB optimizations ({keys} keys, {value_size} B values)"),
        vec![
            "configuration".to_string(),
            "write KOps/s".to_string(),
            "read KOps/s".to_string(),
            "seek KOps/s".to_string(),
        ],
    );

    for variant in &variants {
        let engine = EngineKind::PebblesDb;
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let mut options = scaled_options(engine, scale);
        options.enable_sstable_bloom = variant.bloom;
        if !variant.bloom {
            options.bloom_bits_per_key = 0;
        }
        options.enable_parallel_seeks = variant.parallel_seeks;
        options.enable_seek_compaction = variant.seek_compaction;
        options.enable_aggressive_compaction = variant.aggressive;
        let store: Arc<dyn KvStore> =
            Arc::new(PebblesDb::open_with_options(env, &dir, options).expect("open"));

        let writes = Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("writes");
        store.flush().expect("flush");
        let reads = Workload::ReadRandom
            .run(&store, keys / 2, 16, value_size, 1)
            .expect("reads");
        let seeks = Workload::RangeQuery { nexts: 20 }
            .run(&store, keys / 4, 16, value_size, 1)
            .expect("seeks");

        report.add_row(vec![
            variant.name.to_string(),
            format_kops(writes.kops_per_second()),
            format_kops(reads.kops_per_second()),
            format_kops(seeks.kops_per_second()),
        ]);
    }

    report.add_note("Paper: without optimisations range queries lose 66%; parallel seeks alone reduce that to 48%, seek-based compaction alone to 7%; bloom filters improve reads by 63%.");
    report.print();
}
