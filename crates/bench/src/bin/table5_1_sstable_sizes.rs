//! Table 5.1: distribution of sstable sizes for PebblesDB vs HyperLevelDB.
//!
//! The paper inserts 50M key-value pairs and reports the mean, median, 90th
//! and 95th percentile sstable size: PebblesDB produces fewer, larger and
//! more variable sstables (median below the mean, heavy right tail) while
//! HyperLevelDB's sstables cluster tightly around the target file size.

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 200_000);
    let value_size = args.get_u64("value-size", 512) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;

    let mut report = Report::new(
        &format!("Table 5.1: sstable size distribution ({keys} inserts, {value_size} B values)"),
        vec![
            "store".to_string(),
            "files".to_string(),
            "mean KiB".to_string(),
            "median KiB".to_string(),
            "p90 KiB".to_string(),
            "p95 KiB".to_string(),
        ],
    );

    for engine in [EngineKind::PebblesDb, EngineKind::HyperLevelDb] {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store = open_engine(engine, env, &dir, scale).expect("open engine");
        Workload::FillRandom
            .run(&store, keys, 16, value_size, 1)
            .expect("fill");
        store.flush().expect("flush");

        let mut sizes = store.live_file_sizes();
        sizes.sort_unstable();
        let mean = if sizes.is_empty() {
            0
        } else {
            sizes.iter().sum::<u64>() / sizes.len() as u64
        };
        report.add_row(vec![
            engine.name().to_string(),
            sizes.len().to_string(),
            (mean / 1024).to_string(),
            (percentile(&sizes, 50.0) / 1024).to_string(),
            (percentile(&sizes, 90.0) / 1024).to_string(),
            (percentile(&sizes, 95.0) / 1024).to_string(),
        ]);
    }

    report.add_note("Paper (50M keys / 33 GB): PebblesDB mean 17.2 MB, median 5.3 MB, p90 51 MB, p95 68 MB; HyperLevelDB mean 13.3 MB, median/p90/p95 ~16.6 MB.");
    report.add_note("Expected shape: PebblesDB has fewer files with a skewed size distribution (median < mean, large p90/p95); the baseline clusters at the file-size target.");
    report.print();
}
