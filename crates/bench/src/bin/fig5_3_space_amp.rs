//! Figure 5.3: space amplification.
//!
//! Two runs per store: (1) insert N unique keys; (2) insert N/10 unique keys
//! and update each of them 10 times. The paper finds all LSM-family stores
//! within a few percent of each other for unique keys, and a small PebblesDB
//! overhead (7.9 GB vs 7.1 GB) for the duplicate-heavy run because merging is
//! delayed.

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_mib, format_ratio};
use pebblesdb_bench::workloads::{bench_key, bench_value};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 100_000);
    let value_size = args.get_u64("value-size", 128) as usize;
    let scale = args.get_u64("scale-divisor", 32) as usize;

    let mut report = Report::new(
        &format!("Figure 5.3: space amplification ({keys} writes, {value_size} B values)"),
        vec![
            "store".to_string(),
            "workload".to_string(),
            "user data".to_string(),
            "live on disk".to_string(),
            "space amp".to_string(),
        ],
    );

    for engine in [
        EngineKind::PebblesDb,
        EngineKind::HyperLevelDb,
        EngineKind::LevelDb,
        EngineKind::RocksDb,
    ] {
        for unique in [true, false] {
            let (env, dir) = open_bench_env(
                &args.get_str("env", "mem"),
                engine,
                &args.get_str("dir", ""),
            );
            let store = open_engine(engine, env, &dir, scale).expect("open engine");
            let mut rng = StdRng::seed_from_u64(42);
            if unique {
                for i in 0..keys {
                    store
                        .put(&bench_key(i), &bench_value(i, value_size, &mut rng))
                        .expect("put");
                }
            } else {
                let distinct = (keys / 10).max(1);
                for round in 0..10u64 {
                    for i in 0..distinct {
                        store
                            .put(&bench_key(i), &bench_value(i + round, value_size, &mut rng))
                            .expect("put");
                    }
                }
            }
            store.flush().expect("flush");
            let stats = store.stats();
            report.add_row(vec![
                engine.name().to_string(),
                if unique {
                    "unique keys"
                } else {
                    "10x duplicates"
                }
                .to_string(),
                format_mib(stats.user_bytes_written),
                format_mib(stats.disk_bytes_live),
                format_ratio(stats.space_amplification()),
            ]);
        }
    }

    report.add_note("Paper: unique-key runs land within 2% of each other (~52 GB); with 10x duplicates PebblesDB uses 7.9 GB vs RocksDB 7.1 GB and LevelDB 7.8 GB.");
    report.add_note("Expected shape: near-identical space for unique keys; a modest PebblesDB overhead (and well under the 10x user-data volume) for the duplicate run.");
    report.print();
}
