//! Figure 5.1(b)–(e): the db_bench micro-benchmark suite.
//!
//! * part `b` — single-threaded fillseq / fillrandom / readrandom /
//!   seekrandom / deleterandom (16 B keys, 1 KiB values).
//! * part `c` — four-thread writes, reads and a mixed read/write workload
//!   under RocksDB-style level-0 settings.
//! * part `d` — a small, fully cached dataset (reads and seeks), including
//!   the `PebblesDB-1` configuration with `max_sstables_per_guard = 1`.
//! * part `e` — small (128 B) values.
//!
//! Run one part with `--part b|c|d|e` or everything with `--part all`.

use std::sync::Arc;

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_kops, format_mib};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};
use pebblesdb_common::KvStore;

struct PartConfig {
    title: &'static str,
    engines: Vec<EngineKind>,
    keys: u64,
    value_size: usize,
    threads: usize,
    workloads: Vec<Workload>,
    note: &'static str,
}

fn run_part(args: &Args, part: &PartConfig) {
    let keys = args.get_u64("keys", part.keys);
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let mut report = Report::new(
        &format!(
            "{} ({keys} keys, {} B values, {} threads)",
            part.title, part.value_size, part.threads
        ),
        {
            let mut cols = vec!["store".to_string()];
            cols.extend(
                part.workloads
                    .iter()
                    .map(|w| format!("{} KOps/s", w.name())),
            );
            cols.push("write IO".to_string());
            cols
        },
    );

    for &engine in &part.engines {
        let (env, dir) = open_bench_env(
            &args.get_str("env", "mem"),
            engine,
            &args.get_str("dir", ""),
        );
        let store: Arc<dyn KvStore> = open_engine(engine, env, &dir, scale).expect("open engine");
        let mut row = vec![engine.name().to_string()];
        for workload in &part.workloads {
            let ops = match workload {
                Workload::ReadRandom
                | Workload::SeekRandom
                | Workload::RangeQuery { .. }
                | Workload::ReadWhileWriting => (keys / 2).max(1),
                _ => keys,
            };
            let result = workload
                .run(&store, ops, 16, part.value_size, part.threads)
                .expect("workload");
            row.push(format_kops(result.kops_per_second()));
            if matches!(workload, Workload::FillSeq | Workload::FillRandom) {
                // Reads and seeks run against the compacted store, as in the
                // paper's single-threaded experiments.
                store.flush().expect("flush");
            }
        }
        row.push(format_mib(store.stats().bytes_written));
        report.add_row(row);
    }
    report.add_note(part.note);
    report.print();
}

fn main() {
    let args = Args::parse();
    let part = args.get_str("part", "all");

    let part_b = PartConfig {
        title: "Figure 5.1(b): single-threaded micro-benchmarks",
        engines: EngineKind::paper_four(),
        keys: 50_000,
        value_size: 1024,
        threads: 1,
        workloads: vec![
            Workload::FillSeq,
            Workload::FillRandom,
            Workload::ReadRandom,
            Workload::SeekRandom,
            Workload::DeleteRandom,
        ],
        note: "Paper: PebblesDB 2.7x HyperLevelDB on random writes, ~3x slower on sequential writes, ~30% slower on seeks after full compaction.",
    };
    let part_c = PartConfig {
        title: "Figure 5.1(c): multi-threaded reads/writes and mixed workload",
        engines: EngineKind::paper_four(),
        keys: 40_000,
        value_size: 1024,
        threads: 4,
        workloads: vec![
            Workload::FillRandom,
            Workload::ReadRandom,
            Workload::ReadWhileWriting,
        ],
        note: "Paper: with 4 threads PebblesDB gets 3.3x RocksDB / 1.7x HyperLevelDB write throughput and wins the mixed workload.",
    };
    let part_d = PartConfig {
        title: "Figure 5.1(d): small fully-cached dataset",
        engines: vec![
            EngineKind::PebblesDb,
            EngineKind::PebblesDb1,
            EngineKind::HyperLevelDb,
        ],
        keys: 20_000,
        value_size: 1024,
        threads: 1,
        workloads: vec![
            Workload::FillRandom,
            Workload::ReadRandom,
            Workload::SeekRandom,
        ],
        note: "Paper: on cached data PebblesDB still wins writes but pays ~7% on reads and ~47% on seeks; PebblesDB-1 (one sstable per guard) recovers most of the seek cost.",
    };
    let part_e = PartConfig {
        title: "Figure 5.1(e): small key-value pairs",
        engines: EngineKind::paper_four(),
        keys: 100_000,
        value_size: 128,
        threads: 1,
        workloads: vec![
            Workload::FillRandom,
            Workload::ReadRandom,
            Workload::SeekRandom,
        ],
        note: "Paper: with 128 B values PebblesDB keeps its write-throughput lead and matches reads/seeks.",
    };

    match part.as_str() {
        "b" => run_part(&args, &part_b),
        "c" => run_part(&args, &part_c),
        "d" => run_part(&args, &part_d),
        "e" => run_part(&args, &part_e),
        _ => {
            run_part(&args, &part_b);
            run_part(&args, &part_c);
            run_part(&args, &part_d);
            run_part(&args, &part_e);
        }
    }
}
