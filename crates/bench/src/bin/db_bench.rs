//! A `db_bench`-style driver: run any micro-benchmark against any engine.
//!
//! ```text
//! cargo run --release -p pebblesdb-bench --bin db_bench -- \
//!     --engine pebblesdb --benchmarks fillrandom,readrandom,seekrandom \
//!     --keys 100000 --value-size 1024 --threads 1
//! ```

use std::sync::Arc;

use pebblesdb_bench::engines::{
    open_bench_env_full, open_db_with_options, open_engine_with_options,
    open_sharded_db_with_options,
};
use pebblesdb_bench::report::{format_kops, format_mib, format_ratio};
use pebblesdb_bench::{scaled_options, Args, EngineKind, Report, Workload};
use pebblesdb_common::{CompressionType, Db, KvStore};

fn workload_from_name(name: &str) -> Option<Workload> {
    match name {
        "fillseq" => Some(Workload::FillSeq),
        "fillrandom" => Some(Workload::FillRandom),
        "overwrite" => Some(Workload::Overwrite),
        "readrandom" => Some(Workload::ReadRandom),
        "seekrandom" => Some(Workload::SeekRandom),
        "rangequery" => Some(Workload::RangeQuery { nexts: 50 }),
        "deleterandom" => Some(Workload::DeleteRandom),
        "readwhilewriting" => Some(Workload::ReadWhileWriting),
        "mixedscanwrite" | "mixed_scan_write" => Some(Workload::MixedScanWrite { nexts: 50 }),
        _ => None,
    }
}

/// `--value-sweep`: fillrandom across value sizes 64 B → 64 KiB, key-value
/// separation off vs on, a fresh store per cell. The logical volume per cell
/// is held roughly constant (`--sweep-mib`, default 8 MiB) so the write-amp
/// columns compare apples to apples: with separation on, compaction rewrites
/// 20-byte pointers instead of the values, so "on write amp" should fall well
/// below "off write amp" once values clear the threshold, while the sub-
/// threshold sizes stay within noise of each other.
fn run_value_sweep(args: &Args) {
    let engine = EngineKind::from_flag(&args.get_str("engine", "pebblesdb"))
        .expect("unknown --engine (pebblesdb|pebblesdb-1|hyperleveldb|leveldb|rocksdb|btree)");
    let threads = args.get_u64("threads", 1) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let threshold = args.get_u64("sweep-threshold", 512) as usize;
    let target_bytes = args.get_u64("sweep-mib", 8) << 20;
    let write_latency_us = args.get_u64("write-latency-us", 0);

    let mut report = Report::new(
        &format!(
            "value-size sweep — {} (fillrandom, ~{} MiB logical per cell, separation threshold {threshold} B)",
            engine.name(),
            target_bytes >> 20
        ),
        vec![
            "value size".to_string(),
            "ops".to_string(),
            "off KOps/s".to_string(),
            "off write amp".to_string(),
            "on KOps/s".to_string(),
            "on write amp".to_string(),
            "amp off/on".to_string(),
        ],
    );

    for value_size in [64usize, 256, 1024, 4096, 16384, 65536] {
        // 16-byte keys, constant logical volume → more ops at small sizes.
        let ops = (target_bytes / (16 + value_size as u64)).max(64);
        let mut cells = Vec::new();
        for separate in [false, true] {
            let (env, mem_env, dir) = open_bench_env_full(
                &args.get_str("env", "mem"),
                engine,
                &args.get_str("dir", ""),
            );
            if write_latency_us > 0 {
                if let Some(mem) = &mem_env {
                    mem.set_write_latency_micros_for(".sst", write_latency_us);
                }
            }
            let mut options = scaled_options(engine, scale);
            if separate {
                options.value_separation_threshold = threshold;
            }
            let store = open_engine_with_options(engine, env, &dir, options).expect("open engine");
            let result = Workload::FillRandom
                .run(&store, ops, 16, value_size, threads)
                .expect("run fillrandom");
            cells.push((result.kops_per_second(), result.write_amplification()));
        }
        let (off_kops, off_amp) = cells[0];
        let (on_kops, on_amp) = cells[1];
        report.add_row(vec![
            format!("{value_size} B"),
            ops.to_string(),
            format_kops(off_kops),
            format_ratio(off_amp),
            format_kops(on_kops),
            format_ratio(on_amp),
            if on_amp > 0.0 {
                format!("{:.2}x", off_amp / on_amp)
            } else {
                "-".to_string()
            },
        ]);
    }
    report.add_note("'write amp' is store bytes written per logical byte (WAL + vlog + sstables over key+value bytes).");
    report.add_note(&format!(
        "Separation only applies to values >= {threshold} B; smaller rows are the no-regression control."
    ));
    report.print();
}

/// `--compression-sweep`: fillrandom + readrandom at compressibility 0.25
/// and 1.0, block/vlog compression off vs on, a fresh store per cell. The
/// interesting numbers are the "bytes ratio" column — device bytes written
/// with compression off over on, which should clear ~1.8x for the
/// 0.25-compressible cell and sit at ~1.0x for the incompressible one — and
/// the read KOps columns, where decompression should hold at or above
/// parity because the block cache only holds uncompressed bytes.
fn run_compression_sweep(args: &Args) {
    let engine = EngineKind::from_flag(&args.get_str("engine", "pebblesdb"))
        .expect("unknown --engine (pebblesdb|pebblesdb-1|hyperleveldb|leveldb|rocksdb|btree)");
    let threads = args.get_u64("threads", 1) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let keys = args.get_u64("keys", 20_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let write_latency_us = args.get_u64("write-latency-us", 0);

    let mut report = Report::new(
        &format!(
            "compression sweep — {} (fillrandom + readrandom, {keys} keys, {value_size} B values)",
            engine.name()
        ),
        vec![
            "compressibility".to_string(),
            "off fill KOps/s".to_string(),
            "off write IO".to_string(),
            "on fill KOps/s".to_string(),
            "on write IO".to_string(),
            "bytes ratio".to_string(),
            "off read KOps/s".to_string(),
            "on read KOps/s".to_string(),
        ],
    );

    for compressibility in [0.25f64, 1.0] {
        let mut cells = Vec::new();
        for compression in [CompressionType::None, CompressionType::Lz] {
            let (env, mem_env, dir) = open_bench_env_full(
                &args.get_str("env", "mem"),
                engine,
                &args.get_str("dir", ""),
            );
            if write_latency_us > 0 {
                if let Some(mem) = &mem_env {
                    mem.set_write_latency_micros_for(".sst", write_latency_us);
                }
            }
            let mut options = scaled_options(engine, scale);
            options.compression = compression;
            // Size the block cache for the working set: the cache holds
            // uncompressed bytes by design, so once warm, reads cost the
            // same with compression on or off — that is the property the
            // read columns measure (the cold-miss decompression cost shows
            // up separately in the decompress_micros stat).
            options.block_cache_capacity = ((keys as usize * (16 + value_size)) * 2).max(8 << 20);
            let store = open_engine_with_options(engine, env, &dir, options).expect("open engine");
            let shards = std::slice::from_ref(&store);
            let fill = Workload::FillRandom
                .run_sharded_compressible(shards, keys, 16, value_size, threads, compressibility)
                .expect("run fillrandom");
            store.flush().expect("flush after fill");
            // Warm the cache with one full scan so readrandom measures
            // steady-state reads, not first-touch block loads.
            let mut iter = store
                .iter(&pebblesdb_common::ReadOptions::default())
                .expect("open warming iterator");
            iter.seek_to_first();
            while iter.valid() {
                std::hint::black_box((iter.key(), iter.value()));
                iter.next();
            }
            drop(iter);
            let read = Workload::ReadRandom
                .run_sharded_compressible(
                    shards,
                    (keys / 2).max(1),
                    16,
                    value_size,
                    threads,
                    compressibility,
                )
                .expect("run readrandom");
            cells.push((fill, read));
        }
        let (off_fill, off_read) = &cells[0];
        let (on_fill, on_read) = &cells[1];
        report.add_row(vec![
            format!("{compressibility}"),
            format_kops(off_fill.kops_per_second()),
            format_mib(off_fill.bytes_written),
            format_kops(on_fill.kops_per_second()),
            format_mib(on_fill.bytes_written),
            if on_fill.bytes_written > 0 {
                format!(
                    "{:.2}x",
                    off_fill.bytes_written as f64 / on_fill.bytes_written as f64
                )
            } else {
                "-".to_string()
            },
            format_kops(off_read.kops_per_second()),
            format_kops(on_read.kops_per_second()),
        ]);
    }
    report.add_note("'bytes ratio' is device bytes written with compression off over on: >1 means the codec saved real IO.");
    report.add_note("Compressibility is the fraction an ideal codec shrinks each value to; 1.0 is fully random (the no-regression control).");
    report.print();
}

fn main() {
    let args = Args::parse();
    if args.has_flag("value-sweep") {
        run_value_sweep(&args);
        return;
    }
    if args.has_flag("compression-sweep") {
        run_compression_sweep(&args);
        return;
    }
    let keys = args.get_u64("keys", 50_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let threads = args.get_u64("threads", 1) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let engine = EngineKind::from_flag(&args.get_str("engine", "pebblesdb"))
        .expect("unknown --engine (pebblesdb|pebblesdb-1|hyperleveldb|leveldb|rocksdb|btree)");
    let benchmarks = args.get_str("benchmarks", "fillrandom,readrandom,seekrandom");

    let (env, mem_env, dir) = open_bench_env_full(
        &args.get_str("env", "mem"),
        engine,
        &args.get_str("dir", ""),
    );
    // Emulate a slow device for sstable writes (flushes + compactions pay
    // it, the WAL does not). Only meaningful with the in-memory env; this is
    // how compaction-parallelism wins are made visible on a machine whose
    // page cache would otherwise absorb all compaction IO.
    let write_latency_us = args.get_u64("write-latency-us", 0);
    if write_latency_us > 0 {
        if let Some(mem) = &mem_env {
            mem.set_write_latency_micros_for(".sst", write_latency_us);
        } else {
            eprintln!("--write-latency-us is only supported with --env mem");
        }
    }
    let mut options = scaled_options(engine, scale);
    // 0 keeps the preset's pool size (PebblesDB: 2, baselines: 1).
    let compaction_threads = args.get_u64("compaction-threads", 0) as usize;
    if compaction_threads > 0 {
        options.compaction_threads = compaction_threads;
    }
    // 0 (the default) keeps key-value separation off; any other value is the
    // minimum value size, in bytes, that goes to the per-family value log.
    options.value_separation_threshold = args.get_u64("value-separation-threshold", 0) as usize;
    // `--compression on|off` (also accepts lz/none) toggles block + vlog
    // compression; `--compressibility R` makes generated values shrink to
    // ~R of their size under an ideal codec (1.0 = fully random).
    options.compression = CompressionType::parse(&args.get_str("compression", "off"))
        .expect("unknown --compression (on|off|lz|none)");
    let compressibility = args.get_f64("compressibility", 1.0);
    // `--cfs N` round-robins the key stream over N column families of one
    // database: shard 0 is the default family, shards 1..N are created. With
    // N = 1 the run is byte-for-byte the single-namespace benchmark.
    let cfs = args.get_u64("cfs", 1).max(1) as usize;
    // `--shards N` opens the engine as a ShardedDb of N instances. 0 (the
    // default) opens the plain engine; `--shards 1` goes through the
    // sharded facade with one shard, so 1-vs-N comparisons isolate the
    // scaling win from the coordinator's fixed overhead.
    let shard_count = args.get_u64("shards", 0) as usize;
    let partitioner = pebblesdb_shard::PartitionerKind::parse(&args.get_str("partitioner", "hash"))
        .expect("unknown --partitioner (hash|range)");
    let db: Arc<dyn Db> = if shard_count > 0 {
        let config = pebblesdb_shard::ShardConfig {
            shards: shard_count,
            partitioner,
        };
        open_sharded_db_with_options(engine, env, &dir, options.clone(), config)
            .expect("open sharded engine")
    } else {
        open_db_with_options(engine, env, &dir, options.clone()).expect("open engine")
    };
    let mut shards: Vec<Arc<dyn KvStore>> = vec![Arc::clone(&db) as Arc<dyn KvStore>];
    for i in 1..cfs {
        // `cf_or_create` keeps reruns against an existing --dir working:
        // the families persist in the database's catalog.
        shards.push(Arc::new(
            db.cf_or_create(&format!("cf{i}"))
                .expect("create column family"),
        ));
    }

    let sharding = if shard_count > 0 {
        format!(", {shard_count} {} shards", partitioner.name())
    } else {
        String::new()
    };
    let mut report = Report::new(
        &format!(
            "db_bench — {} ({keys} keys, {value_size} B values, {threads} threads, {} compaction threads, {cfs} column families{sharding})",
            engine.name(),
            options.compaction_threads
        ),
        vec![
            "benchmark".to_string(),
            "KOps/s".to_string(),
            "ops".to_string(),
            "write IO".to_string(),
            "read IO".to_string(),
            "write amp".to_string(),
            "stall ms".to_string(),
            "max conc".to_string(),
            "cache hit%".to_string(),
        ],
    );

    for name in benchmarks.split(',') {
        let Some(workload) = workload_from_name(name.trim()) else {
            eprintln!("skipping unknown benchmark {name:?}");
            continue;
        };
        let ops = match workload {
            Workload::ReadRandom
            | Workload::SeekRandom
            | Workload::RangeQuery { .. }
            | Workload::MixedScanWrite { .. } => keys / 2,
            _ => keys,
        }
        .max(1);
        let result = workload
            .run_sharded_compressible(&shards, ops, 16, value_size, threads, compressibility)
            .expect("run workload");
        report.add_row(vec![
            result.name.clone(),
            format_kops(result.kops_per_second()),
            result.operations.to_string(),
            format_mib(result.bytes_written),
            format_mib(result.bytes_read),
            format_ratio(result.write_amplification()),
            format!("{:.1}", result.stall_micros as f64 / 1000.0),
            result.max_concurrent_compactions.to_string(),
            result
                .block_cache_hit_pct()
                .map(|pct| format!("{pct:.1}%"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
        db.flush().expect("flush between benchmarks");
    }
    report.add_note("Figure 5.1(b) of the paper runs fillseq/fillrandom/readrandom/seekrandom/deleterandom with 16 B keys and 1 KiB values.");
    report.add_note("'max conc' is the store-lifetime high-water mark of concurrently running compaction jobs (>1 means per-guard jobs overlapped).");
    report.add_note("'cache hit%' is the block-cache hit rate over the benchmark interval ('-' when the cache was never consulted, e.g. pure fills).");
    report.print();

    if cfs > 1 {
        // Per-family breakdown, so one namespace's compaction debt cannot
        // hide behind another's in the aggregate table above. The columns
        // come from the shared field list, so this table, the server's INFO
        // command and the Prometheus endpoint always show the same fields.
        let cf_stats = db.cf_stats();
        let mut header = vec!["family".to_string()];
        if let Some(first) = cf_stats.first() {
            header.extend(
                pebblesdb_common::stats_text::cf_stat_fields(first)
                    .iter()
                    .map(|f| f.name.to_string()),
            );
        }
        let mut cf_report = Report::new("per column family", header);
        for cf in cf_stats {
            let mut row = vec![cf.name.clone()];
            row.extend(
                pebblesdb_common::stats_text::cf_stat_fields(&cf)
                    .iter()
                    .map(|f| f.human_value()),
            );
            cf_report.add_row(row);
        }
        cf_report.print();
    }

    // Per-shard breakdown (transposed: one column per shard) so a skewed
    // partitioner or a straggling shard is visible next to the aggregate.
    // Field names and order come from the same shared list as INFO and the
    // Prometheus endpoint.
    let shard_stats = db.shard_stats();
    if !shard_stats.is_empty() {
        let mut header = vec!["stat".to_string()];
        header.extend((0..shard_stats.len()).map(|i| format!("shard {i}")));
        let mut shard_report = Report::new("per shard", header);
        let per_shard_fields: Vec<Vec<pebblesdb_common::stats_text::StatField>> = shard_stats
            .iter()
            .map(pebblesdb_common::stats_text::store_stat_fields)
            .collect();
        for (row_idx, field) in per_shard_fields[0].iter().enumerate() {
            let mut row = vec![field.name.to_string()];
            row.extend(
                per_shard_fields
                    .iter()
                    .map(|fields| fields[row_idx].human_value()),
            );
            shard_report.add_row(row);
        }
        shard_report.print();
    }
}
