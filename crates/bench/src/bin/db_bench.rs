//! A `db_bench`-style driver: run any micro-benchmark against any engine.
//!
//! ```text
//! cargo run --release -p pebblesdb-bench --bin db_bench -- \
//!     --engine pebblesdb --benchmarks fillrandom,readrandom,seekrandom \
//!     --keys 100000 --value-size 1024 --threads 1
//! ```

use std::sync::Arc;

use pebblesdb_bench::engines::open_bench_env;
use pebblesdb_bench::report::{format_kops, format_mib, format_ratio};
use pebblesdb_bench::{open_engine, Args, EngineKind, Report, Workload};

fn workload_from_name(name: &str) -> Option<Workload> {
    match name {
        "fillseq" => Some(Workload::FillSeq),
        "fillrandom" => Some(Workload::FillRandom),
        "overwrite" => Some(Workload::Overwrite),
        "readrandom" => Some(Workload::ReadRandom),
        "seekrandom" => Some(Workload::SeekRandom),
        "rangequery" => Some(Workload::RangeQuery { nexts: 50 }),
        "deleterandom" => Some(Workload::DeleteRandom),
        "readwhilewriting" => Some(Workload::ReadWhileWriting),
        "mixedscanwrite" | "mixed_scan_write" => Some(Workload::MixedScanWrite { nexts: 50 }),
        _ => None,
    }
}

fn main() {
    let args = Args::parse();
    let keys = args.get_u64("keys", 50_000);
    let value_size = args.get_u64("value-size", 1024) as usize;
    let threads = args.get_u64("threads", 1) as usize;
    let scale = args.get_u64("scale-divisor", 16) as usize;
    let engine = EngineKind::from_flag(&args.get_str("engine", "pebblesdb"))
        .expect("unknown --engine (pebblesdb|pebblesdb-1|hyperleveldb|leveldb|rocksdb|btree)");
    let benchmarks = args.get_str("benchmarks", "fillrandom,readrandom,seekrandom");

    let (env, dir) = open_bench_env(
        &args.get_str("env", "mem"),
        engine,
        &args.get_str("dir", ""),
    );
    let store: Arc<_> = open_engine(engine, env, &dir, scale).expect("open engine");

    let mut report = Report::new(
        &format!(
            "db_bench — {} ({keys} keys, {value_size} B values, {threads} threads)",
            engine.name()
        ),
        vec![
            "benchmark".to_string(),
            "KOps/s".to_string(),
            "ops".to_string(),
            "write IO".to_string(),
            "read IO".to_string(),
            "write amp".to_string(),
            "stall ms".to_string(),
        ],
    );

    for name in benchmarks.split(',') {
        let Some(workload) = workload_from_name(name.trim()) else {
            eprintln!("skipping unknown benchmark {name:?}");
            continue;
        };
        let ops = match workload {
            Workload::ReadRandom
            | Workload::SeekRandom
            | Workload::RangeQuery { .. }
            | Workload::MixedScanWrite { .. } => keys / 2,
            _ => keys,
        }
        .max(1);
        let result = workload
            .run(&store, ops, 16, value_size, threads)
            .expect("run workload");
        report.add_row(vec![
            result.name.clone(),
            format_kops(result.kops_per_second()),
            result.operations.to_string(),
            format_mib(result.bytes_written),
            format_mib(result.bytes_read),
            format_ratio(result.write_amplification()),
            format!("{:.1}", result.stall_micros as f64 / 1000.0),
        ]);
        store.flush().expect("flush between benchmarks");
    }
    report.add_note("Figure 5.1(b) of the paper runs fillseq/fillrandom/readrandom/seekrandom/deleterandom with 16 B keys and 1 KiB values.");
    report.print();
}
