//! Cross-crate integration tests for the PebblesDB workspace.
//!
//! The actual tests live in `tests/` next to this file; this library only
//! exists so the package has a build target.
