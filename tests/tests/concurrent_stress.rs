//! Concurrency stress suite for the group-commit write pipeline and the
//! concurrent arena memtable.
//!
//! N writer threads race M cursor/get threads against both LSM engines and
//! asserts the invariants the redesign must preserve:
//!
//! * **Batch atomicity.** Each writer updates a key pair atomically in one
//!   `WriteBatch`; a snapshot read must never observe the pair torn.
//! * **Snapshot isolation.** Two cursors opened on the same snapshot, while
//!   writes keep streaming, must yield identical contents.
//! * **Zero memtable clones.** A cursor held open across more than
//!   `write_buffer_size` worth of writes must not force a memtable deep copy
//!   (`StoreStats::memtable_clones` stays 0 — the `Arc::make_mut`
//!   copy-on-write path is gone).
//!
//! The suite is intentionally heavier than the unit tests; CI runs it in
//! release mode.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, ReadOptions, StoreOptions, StorePreset, StoreStats, WriteBatch};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

const WRITER_THREADS: usize = 4;
const READER_THREADS: usize = 3;
const WRITES_PER_THREAD: usize = 400;
const KEYS_PER_WRITER: u64 = 32;

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 32 << 10;
    opts.max_file_size = 16 << 10;
    opts.base_level_bytes = 64 << 10;
    opts.level0_compaction_trigger = 2;
    opts
}

fn both_engines() -> Vec<(&'static str, Arc<dyn KvStore>)> {
    let opts = small_options();
    let flsm_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let lsm_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    vec![
        (
            "flsm",
            Arc::new(
                PebblesDb::open_with_options(flsm_env, Path::new("/flsm"), opts.clone()).unwrap(),
            ) as Arc<dyn KvStore>,
        ),
        (
            "lsm",
            Arc::new(
                LsmDb::open_with_options(
                    lsm_env,
                    Path::new("/lsm"),
                    opts,
                    StorePreset::HyperLevelDb,
                )
                .unwrap(),
            ),
        ),
    ]
}

/// The key pair writer `w` updates atomically for slot `i`.
fn pair_keys(w: usize, i: u64) -> (Vec<u8>, Vec<u8>) {
    (
        format!("a/{w:02}/{i:04}").into_bytes(),
        format!("b/{w:02}/{i:04}").into_bytes(),
    )
}

/// Writers update key pairs in atomic batches while snapshot readers verify
/// the pair is never torn and cursors opened mid-stream are self-consistent.
#[test]
fn concurrent_writers_and_snapshot_readers_agree() {
    for (name, store) in both_engines() {
        let stop = Arc::new(AtomicBool::new(false));
        let torn = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            for reader in 0..READER_THREADS {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let torn = Arc::clone(&torn);
                scope.spawn(move || {
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let snap = store.snapshot();
                        let opts = snap.read_options();
                        if reader == 0 {
                            // Cursor consistency: two cursors on the same
                            // snapshot stream identical contents even while
                            // writers keep committing.
                            let first = store.scan_opts(&opts, b"a/", b"a0", 10_000).unwrap();
                            let second = store.scan_opts(&opts, b"a/", b"a0", 10_000).unwrap();
                            assert_eq!(first, second, "snapshot cursors diverged ({rounds})");
                        } else {
                            // Pair atomicity under a pinned snapshot.
                            let w = rounds as usize % WRITER_THREADS;
                            let i = rounds % KEYS_PER_WRITER;
                            let (ka, kb) = pair_keys(w, i);
                            let va = store.get_opts(&opts, &ka).unwrap();
                            let vb = store.get_opts(&opts, &kb).unwrap();
                            if va != vb {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        rounds += 1;
                    }
                });
            }

            for w in 0..WRITER_THREADS {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for version in 0..WRITES_PER_THREAD as u64 {
                        let i = version % KEYS_PER_WRITER;
                        let (ka, kb) = pair_keys(w, i);
                        let value = format!("v{version:08}").into_bytes();
                        let mut batch = WriteBatch::new();
                        batch.put(&ka, &value);
                        batch.put(&kb, &value);
                        store.write(batch).unwrap();
                    }
                });
            }

            // Writers finish first (scope joins writers when their closures
            // return); then stop the readers.
            // The scope guarantees ordering via the stop flag set below once
            // the writer handles are joined.
            scope.spawn({
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                move || {
                    // Poll until every writer's final value is visible, then
                    // stop the readers.
                    let final_version = WRITES_PER_THREAD as u64 - 1;
                    let expected = format!("v{final_version:08}").into_bytes();
                    let (ka, _) = pair_keys(WRITER_THREADS - 1, final_version % KEYS_PER_WRITER);
                    loop {
                        if store.get(&ka).unwrap() == Some(expected.clone()) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    stop.store(true, Ordering::Release);
                }
            });
        });

        assert_eq!(
            torn.load(Ordering::Relaxed),
            0,
            "{name}: a snapshot read observed a torn write batch"
        );

        // Every writer's last value for every slot must be durable.
        store.flush().unwrap();
        for w in 0..WRITER_THREADS {
            for i in 0..KEYS_PER_WRITER {
                let last_version =
                    ((WRITES_PER_THREAD as u64 - 1) / KEYS_PER_WRITER) * KEYS_PER_WRITER + i;
                let last_version = if last_version >= WRITES_PER_THREAD as u64 {
                    last_version - KEYS_PER_WRITER
                } else {
                    last_version
                };
                let expected = format!("v{last_version:08}").into_bytes();
                let (ka, kb) = pair_keys(w, i);
                assert_eq!(store.get(&ka).unwrap(), Some(expected.clone()), "{name}");
                assert_eq!(store.get(&kb).unwrap(), Some(expected), "{name}");
            }
        }
    }
}

/// A cursor held open across more than `write_buffer_size` worth of writes
/// must keep its view, survive the memtable freeze, and force zero memtable
/// clones.
#[test]
fn cursor_across_memtable_rotation_takes_no_clone() {
    for (name, store) in both_engines() {
        for i in 0..100u64 {
            store
                .put(format!("pre/{i:04}").as_bytes(), b"before")
                .unwrap();
        }

        let mut cursor = store.iter(&ReadOptions::default()).unwrap();
        cursor.seek(b"pre/");

        // Write several memtables' worth of data while the cursor is open.
        let value = vec![b'x'; 512];
        let budget = small_options().write_buffer_size * 4;
        let mut written = 0usize;
        let mut i = 0u64;
        while written < budget {
            let key = format!("bulk/{i:08}").into_bytes();
            store.put(&key, &value).unwrap();
            written += key.len() + value.len();
            i += 1;
        }

        // The cursor still streams its pre-rotation view of `pre/`.
        let mut seen = 0;
        while cursor.valid() && cursor.key().starts_with(b"pre/") {
            assert_eq!(cursor.value(), b"before", "{name}");
            seen += 1;
            cursor.next();
        }
        assert_eq!(seen, 100, "{name}: cursor lost part of its view");

        let stats = store.stats();
        assert_eq!(
            stats.memtable_clones, 0,
            "{name}: the copy-on-write path came back"
        );
        assert!(
            stats.user_bytes_written as usize >= budget,
            "{name}: writes went missing"
        );
    }
}

/// The multi-threaded per-guard compaction pool under full write load:
/// 4 writers stream data through a tiny memtable while snapshot readers and
/// a long-lived cursor race the pool (`compaction_threads = 4`).
///
/// Asserts the invariants the compaction subsystem must preserve:
/// * no `bg_error` (the final `flush` would surface it),
/// * snapshot reads stay self-consistent while guards are compacted away
///   beneath them,
/// * a cursor opened before the storm still streams its full pre-storm view,
/// * zero memtable clones, and
/// * at least two compaction jobs genuinely overlapped in time
///   (`max_concurrent_compactions >= 2`) — the tentpole claim of the
///   multi-threaded compaction architecture.
#[test]
fn compaction_pool_overlaps_jobs_and_preserves_consistency() {
    let stats = compaction_storm(|env| {
        let mut opts = storm_options();
        opts.max_sstables_per_guard = 2;
        Arc::new(PebblesDb::open_with_options(env, Path::new("/pool"), opts).unwrap())
    });
    assert!(
        stats.max_concurrent_compactions >= 2,
        "per-guard jobs never overlapped (max concurrency {})",
        stats.max_concurrent_compactions
    );
}

/// The LSM baseline driven through the *same* chassis worker pool
/// (`compaction_threads = 4`): its leveled-compaction policy claims jobs
/// exclusively, so the pool must degrade gracefully to serialized jobs
/// without losing consistency, wedging a worker or poisoning the store.
#[test]
fn lsm_chassis_pool_survives_the_same_storm_with_exclusive_jobs() {
    let stats = compaction_storm(|env| {
        Arc::new(
            LsmDb::open_with_options(
                env,
                Path::new("/pool-lsm"),
                storm_options(),
                StorePreset::HyperLevelDb,
            )
            .unwrap(),
        )
    });
    assert!(
        stats.max_concurrent_compactions <= 1,
        "leveled jobs must stay exclusive (max concurrency {})",
        stats.max_concurrent_compactions
    );
}

fn storm_options() -> StoreOptions {
    let mut opts = small_options();
    opts.write_buffer_size = 16 << 10;
    opts.compaction_threads = 4;
    opts.top_level_bits = 8;
    opts.bit_decrement = 1;
    opts
}

/// Runs the write/read/compaction storm against `open_store` and returns the
/// final stats after the shared invariants held: no `bg_error`, snapshot
/// scans self-consistent, the pre-storm cursor intact, zero memtable clones
/// and a running flush thread.
fn compaction_storm(open_store: impl Fn(Arc<dyn Env>) -> Arc<dyn KvStore>) -> StoreStats {
    let mem_env = MemEnv::new();
    // Widen every sstable write so concurrent jobs reliably overlap in time
    // even on a fast machine; the WAL stays fast.
    mem_env.set_write_latency_micros_for(".sst", 30);
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let store = open_store(env);

    // A pre-storm view for the long-lived cursor.
    for i in 0..100u64 {
        store
            .put(format!("seed/{i:04}").as_bytes(), b"seed")
            .unwrap();
    }
    let mut cursor = store.iter(&ReadOptions::default()).unwrap();
    cursor.seek(b"seed/");

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for reader in 0..READER_THREADS {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    let read_opts = snap.read_options();
                    let start = format!("w/{:02}/", rounds as usize % WRITER_THREADS);
                    let first = store
                        .scan_opts(&read_opts, start.as_bytes(), &[], 64)
                        .unwrap();
                    let second = store
                        .scan_opts(&read_opts, start.as_bytes(), &[], 64)
                        .unwrap();
                    assert_eq!(
                        first, second,
                        "reader {reader}: snapshot scans diverged under compaction"
                    );
                    rounds += 1;
                }
            });
        }

        for w in 0..WRITER_THREADS {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let value = vec![b'v'; 256];
                for i in 0..1500u64 {
                    let key = format!("w/{w:02}/{:06}", i % 512);
                    store.put(key.as_bytes(), &value).unwrap();
                }
            });
        }

        scope.spawn({
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            move || {
                // Stop the readers once the final value of the last writer
                // is visible (all writers are done by then or shortly after).
                let last = format!("w/{:02}/{:06}", WRITER_THREADS - 1, 1499 % 512);
                while store.get(last.as_bytes()).unwrap().is_none() {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            }
        });
    });

    // No bg_error anywhere in the pool.
    store.flush().expect("a compaction job poisoned the store");

    // The long-lived cursor still streams its complete pre-storm view.
    let mut seen = 0;
    while cursor.valid() && cursor.key().starts_with(b"seed/") {
        assert_eq!(cursor.value(), b"seed");
        seen += 1;
        cursor.next();
    }
    assert_eq!(seen, 100, "cursor lost part of its pinned view");

    let stats = store.stats();
    assert_eq!(stats.memtable_clones, 0, "copy-on-write path came back");
    assert!(stats.flushes > 0, "the dedicated flush thread never ran");
    stats
}

/// Hammer point gets from many threads while one thread writes; every get
/// must return either a complete previous value or a complete new value.
#[test]
fn point_reads_race_the_write_stream() {
    for (name, store) in both_engines() {
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..READER_THREADS {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        if let Some(v) = store.get(b"hot").unwrap() {
                            assert_eq!(v.len(), 8, "{name}: torn value");
                            let n = u64::from_le_bytes(v.try_into().unwrap());
                            assert!(n < 2_000, "{name}: impossible version");
                        }
                    }
                });
            }
            let writer_store = Arc::clone(&store);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                for n in 0..2_000u64 {
                    writer_store.put(b"hot", &n.to_le_bytes()).unwrap();
                }
                writer_stop.store(true, Ordering::Release);
            });
        });
        assert_eq!(
            store.get(b"hot").unwrap(),
            Some(1_999u64.to_le_bytes().to_vec()),
            "{name}"
        );
    }
}
