//! Key-value separation integration tests: large values routed through the
//! per-family value log, pointer resolution on gets and cursors, vlog GC
//! (relocation, retirement, snapshot-gated reclaim), and the crash windows
//! unique to the vlog — a value durable in the vlog whose WAL commit never
//! happened, and a GC interrupted between relocation and file deletion.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{Db, ReadOptions, StoreOptions, StorePreset};
use pebblesdb_engine::VlogGcReport;
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

const ENGINES: [&str; 2] = ["flsm", "lsm"];

/// A store plus its engine-specific `vlog_gc` entry point.
struct TestDb {
    db: Arc<dyn Db>,
    gc: Box<dyn Fn() -> pebblesdb_common::Result<VlogGcReport>>,
}

fn open_engine(engine: &str, env: &Arc<dyn Env>, dir: &Path, options: StoreOptions) -> TestDb {
    if engine == "flsm" {
        let db = Arc::new(PebblesDb::open_with_options(Arc::clone(env), dir, options).unwrap());
        let gc_db = Arc::clone(&db);
        TestDb {
            db,
            gc: Box::new(move || gc_db.vlog_gc()),
        }
    } else {
        let db = Arc::new(
            LsmDb::open_with_options(Arc::clone(env), dir, options, StorePreset::HyperLevelDb)
                .unwrap(),
        );
        let gc_db = Arc::clone(&db);
        TestDb {
            db,
            gc: Box::new(move || gc_db.vlog_gc()),
        }
    }
}

fn vlog_options(threshold: usize, vlog_file_size: usize) -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 64 << 10;
    opts.max_file_size = 32 << 10;
    opts.level0_compaction_trigger = 2;
    opts.value_separation_threshold = threshold;
    opts.vlog_file_size = vlog_file_size;
    opts
}

/// Names of the `.vlog` files in the default family's directory (the db
/// root).
fn vlog_files(env: &dyn Env, dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = env
        .children(dir)
        .unwrap()
        .into_iter()
        .filter(|name| name.ends_with(".vlog"))
        .collect();
    names.sort();
    names
}

fn big_value(i: u32, len: usize) -> Vec<u8> {
    let tag = format!("value-{i:06}-");
    tag.as_bytes().iter().copied().cycle().take(len).collect()
}

/// Full forward scan into a map (resolving every pointer along the way).
fn scan_all(db: &dyn Db) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut iter = db.iter(&ReadOptions::default()).unwrap();
    iter.seek_to_first();
    while iter.valid() {
        out.insert(iter.key().to_vec(), iter.value().to_vec());
        iter.next();
    }
    iter.status().unwrap();
    out
}

#[test]
fn large_values_roundtrip_through_the_value_log() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-roundtrip");
        let t = open_engine(engine, &env, dir, vlog_options(256, 64 << 20));

        for i in 0..300u32 {
            let key = format!("k{i:04}");
            if i % 3 == 0 {
                t.db.put(key.as_bytes(), b"small").unwrap();
            } else {
                t.db.put(key.as_bytes(), &big_value(i, 1024)).unwrap();
            }
        }
        t.db.flush().unwrap();

        assert!(
            !vlog_files(env.as_ref(), dir).is_empty(),
            "{engine}: separated values must land in a .vlog file"
        );
        let stats = t.db.stats();
        assert!(
            stats.vlog_bytes_written > 0,
            "{engine}: vlog byte counter never moved"
        );

        // Point gets resolve pointers; small values stay inline.
        for i in (0..300u32).step_by(7) {
            let key = format!("k{i:04}");
            let expect = if i % 3 == 0 {
                b"small".to_vec()
            } else {
                big_value(i, 1024)
            };
            assert_eq!(
                t.db.get(key.as_bytes()).unwrap(),
                Some(expect),
                "{engine}: {key} wrong after separation"
            );
        }

        // Cursors resolve pointers in both directions.
        let scanned = scan_all(t.db.as_ref());
        assert_eq!(scanned.len(), 300, "{engine}: scan dropped keys");
        assert_eq!(scanned[&b"k0001"[..].to_vec()], big_value(1, 1024));
        let mut iter = t.db.iter(&ReadOptions::default()).unwrap();
        iter.seek_to_last();
        assert!(iter.valid());
        assert_eq!(iter.key(), b"k0299");
        assert_eq!(iter.value(), big_value(299, 1024).as_slice());
        iter.prev();
        assert_eq!(iter.key(), b"k0298");
        assert!(
            t.db.stats().vlog_cache_hits + t.db.stats().vlog_cache_misses > 0,
            "{engine}: resolutions never touched the reader cache"
        );
    }
}

#[test]
fn vlog_rotates_at_the_size_cap_and_recovers_across_reopen() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-rotate");
        {
            let t = open_engine(engine, &env, dir, vlog_options(256, 4 << 10));
            for i in 0..64u32 {
                t.db.put(format!("r{i:03}").as_bytes(), &big_value(i, 1024))
                    .unwrap();
            }
            let files = vlog_files(env.as_ref(), dir);
            assert!(
                files.len() >= 2,
                "{engine}: 64 KiB of values across a 4 KiB cap must rotate, got {files:?}"
            );
        }

        // Reopen: recovered files are sealed, pointers still resolve, and
        // new writes go to a fresh file instead of appending to a
        // possibly-torn tail.
        let t = open_engine(engine, &env, dir, vlog_options(256, 4 << 10));
        let before = vlog_files(env.as_ref(), dir);
        for i in (0..64u32).step_by(5) {
            assert_eq!(
                t.db.get(format!("r{i:03}").as_bytes()).unwrap(),
                Some(big_value(i, 1024)),
                "{engine}: value lost across reopen"
            );
        }
        t.db.put(b"post-reopen", &big_value(999, 1024)).unwrap();
        let after = vlog_files(env.as_ref(), dir);
        assert!(
            after.len() > before.len(),
            "{engine}: post-reopen separated write must open a new vlog file"
        );
        assert_eq!(
            t.db.get(b"post-reopen").unwrap(),
            Some(big_value(999, 1024))
        );
    }
}

#[test]
fn vlog_gc_relocates_live_values_and_reclaims_dead_files() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-gc");
        let t = open_engine(engine, &env, dir, vlog_options(256, 4 << 10));

        for i in 0..40u32 {
            t.db.put(format!("g{i:03}").as_bytes(), &big_value(i, 1024))
                .unwrap();
        }
        // Overwrite most keys: the old vlog records become garbage.
        for i in 0..36u32 {
            t.db.put(format!("g{i:03}").as_bytes(), &big_value(i + 1000, 1024))
                .unwrap();
        }
        let files_before = vlog_files(env.as_ref(), dir).len();

        // Drain the sealed backlog: each pass scans one (coldest) file.
        let mut relocated = 0u64;
        let mut reclaimed = 0u64;
        for _ in 0..32 {
            let report = (t.gc)().unwrap();
            relocated += report.relocated;
            reclaimed += report.reclaimed_files;
            if report.scanned_files == 0 {
                break;
            }
        }
        assert!(
            reclaimed > 0,
            "{engine}: GC never reclaimed a dead vlog file"
        );
        assert!(
            vlog_files(env.as_ref(), dir).len() < files_before,
            "{engine}: reclaim must shrink the on-disk vlog set"
        );
        let stats = t.db.stats();
        assert_eq!(
            stats.vlog_gc_relocations, relocated,
            "{engine}: relocation counter out of step with reports"
        );
        assert_eq!(
            stats.cleanup_failures, 0,
            "{engine}: healthy GC must not record cleanup failures"
        );

        // Every live value still reads back correctly after relocation.
        for i in 0..40u32 {
            let expect = if i < 36 {
                big_value(i + 1000, 1024)
            } else {
                big_value(i, 1024)
            };
            assert_eq!(
                t.db.get(format!("g{i:03}").as_bytes()).unwrap(),
                Some(expect),
                "{engine}: g{i:03} corrupted by GC"
            );
        }
    }
}

#[test]
fn pinned_snapshot_blocks_vlog_reclaim_and_still_resolves() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-snap");
        let t = open_engine(engine, &env, dir, vlog_options(256, 2 << 10));

        t.db.put(b"pinned", &big_value(1, 1024)).unwrap();
        // Enough filler to rotate the first file into the sealed set.
        for i in 0..8u32 {
            t.db.put(format!("fill{i:02}").as_bytes(), &big_value(i + 10, 1024))
                .unwrap();
        }
        let snap = t.db.snapshot();
        t.db.put(b"pinned", &big_value(2, 1024)).unwrap();

        // GC may relocate, but no file visible to the snapshot may die.
        let report = (t.gc)().unwrap();
        assert_eq!(
            report.reclaimed_files, 0,
            "{engine}: reclaimed a file a pinned snapshot can still reach"
        );
        assert_eq!(
            t.db.get_opts(&snap.read_options(), b"pinned").unwrap(),
            Some(big_value(1, 1024)),
            "{engine}: snapshot read lost the pre-overwrite value"
        );
        assert_eq!(
            t.db.get(b"pinned").unwrap(),
            Some(big_value(2, 1024)),
            "{engine}: latest read must see the overwrite"
        );

        // Once the pin is gone the retired file becomes reclaimable.
        drop(snap);
        let mut reclaimed = 0u64;
        for _ in 0..16 {
            let report = (t.gc)().unwrap();
            reclaimed += report.reclaimed_files;
            if report.scanned_files == 0 && report.reclaimed_files == 0 {
                break;
            }
        }
        assert!(
            reclaimed > 0,
            "{engine}: dropping the snapshot must unblock reclaim"
        );
        assert_eq!(t.db.get(b"pinned").unwrap(), Some(big_value(2, 1024)));
        for i in 0..8u32 {
            assert_eq!(
                t.db.get(format!("fill{i:02}").as_bytes()).unwrap(),
                Some(big_value(i + 10, 1024)),
                "{engine}: filler value lost through GC"
            );
        }
    }
}

/// Crash window 1: the commit path appends to the vlog *before* the WAL.
/// A crash (here: an injected WAL write failure that poisons the store)
/// between the two leaves an orphan record in the vlog and no pointer in
/// the tree. The orphan must stay inert: acknowledged values survive, the
/// failed write is absent, and a later GC pass walks past the orphan (and
/// a torn tail) without error.
#[test]
fn crash_between_vlog_append_and_wal_commit_keeps_the_store_consistent() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-crash-wal");
        {
            let t = open_engine(engine, &env, dir, vlog_options(256, 64 << 20));
            for i in 0..20u32 {
                t.db.put(format!("c{i:03}").as_bytes(), &big_value(i, 1024))
                    .unwrap();
            }
            // The next WAL append dies; the vlog append for "doomed" has
            // already happened by then.
            mem_env.inject_write_error_after(".log", 0);
            assert!(
                t.db.put(b"doomed", &big_value(666, 1024)).is_err(),
                "{engine}: the WAL failure must surface to the writer"
            );
        } // <- crash with an orphan vlog record.

        mem_env.clear_fault_injection();
        // Tear the vlog tail into the orphan record for good measure — a
        // real crash can also leave a partial append.
        let vlogs = vlog_files(env.as_ref(), dir);
        let last = dir.join(vlogs.last().unwrap());
        let size = env.file_size(&last).unwrap() as usize;
        mem_env.truncate_file(&last, size - 100).unwrap();

        let t = open_engine(engine, &env, dir, vlog_options(256, 64 << 20));
        assert_eq!(
            t.db.get(b"doomed").unwrap(),
            None,
            "{engine}: unacknowledged write resurfaced"
        );
        for i in 0..20u32 {
            assert_eq!(
                t.db.get(format!("c{i:03}").as_bytes()).unwrap(),
                Some(big_value(i, 1024)),
                "{engine}: acknowledged value lost"
            );
        }
        // GC over the recovered file must tolerate the orphan/torn tail.
        t.db.put(b"fresh", &big_value(7, 1024)).unwrap();
        let mut reclaimed = 0u64;
        for _ in 0..16 {
            let report = (t.gc)().unwrap();
            reclaimed += report.reclaimed_files;
            if report.scanned_files == 0 && report.reclaimed_files == 0 {
                break;
            }
        }
        assert!(
            reclaimed > 0,
            "{engine}: the recovered file must eventually be drained"
        );
        for i in 0..20u32 {
            assert_eq!(
                t.db.get(format!("c{i:03}").as_bytes()).unwrap(),
                Some(big_value(i, 1024)),
                "{engine}: value corrupted by post-crash GC"
            );
        }
        assert_eq!(t.db.get(b"fresh").unwrap(), Some(big_value(7, 1024)));
    }
}

/// Crash window 2: GC relocated every live value but the file deletion
/// failed (or the process died before it). The relocations are durable via
/// the commit path, so the stale file is pure garbage — a reopen sees it as
/// a sealed file with zero live records and the next pass drains it.
#[test]
fn gc_interrupted_before_file_deletion_self_heals() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-crash-gc");
        {
            let t = open_engine(engine, &env, dir, vlog_options(256, 2 << 10));
            for i in 0..12u32 {
                t.db.put(format!("h{i:03}").as_bytes(), &big_value(i, 1024))
                    .unwrap();
            }
            let before = t.db.stats().cleanup_failures;
            // Relocation succeeds; the delete of the emptied file fails.
            mem_env.inject_remove_error(".vlog");
            let report = (t.gc)().unwrap();
            assert!(
                report.scanned_files > 0,
                "{engine}: GC found nothing to scan"
            );
            assert!(
                t.db.stats().cleanup_failures > before,
                "{engine}: failed vlog delete was silently discarded"
            );
            // Data is untouched by the failure.
            for i in 0..12u32 {
                assert_eq!(
                    t.db.get(format!("h{i:03}").as_bytes()).unwrap(),
                    Some(big_value(i, 1024))
                );
            }
        } // <- crash before the delete could be retried.

        mem_env.clear_fault_injection();
        let t = open_engine(engine, &env, dir, vlog_options(256, 2 << 10));
        let files_before = vlog_files(env.as_ref(), dir).len();
        let mut reclaimed = 0u64;
        for _ in 0..16 {
            let report = (t.gc)().unwrap();
            reclaimed += report.reclaimed_files;
            if report.scanned_files == 0 && report.reclaimed_files == 0 {
                break;
            }
        }
        assert!(
            reclaimed > 0 && vlog_files(env.as_ref(), dir).len() < files_before,
            "{engine}: stale relocated file must be drained after reopen"
        );
        for i in 0..12u32 {
            assert_eq!(
                t.db.get(format!("h{i:03}").as_bytes()).unwrap(),
                Some(big_value(i, 1024)),
                "{engine}: value lost through interrupted GC + reopen"
            );
        }
    }
}

/// GC must make progress on a quiescent store. Each pass reserves its
/// horizon as a fresh sequence slot through the commit queue, so even the
/// record written in the store's final sequence slot — which an
/// unreserved horizon could never relocate without colliding with it — is
/// collected without waiting for user traffic that may never come.
#[test]
fn gc_drains_a_quiescent_store_including_the_final_slot_record() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-slot");
        {
            let t = open_engine(engine, &env, dir, vlog_options(256, 64 << 20));
            for i in 0..5u32 {
                t.db.put(format!("s{i}").as_bytes(), &big_value(i, 1024))
                    .unwrap();
            }
            // "last" owns the store's final sequence number when the pass
            // below captures its horizon.
            t.db.put(b"last", &big_value(42, 1024)).unwrap();
        }
        // Reopen so the records sit in a *sealed* file, with no
        // sequence-advancing write happening after "last".
        let t = open_engine(engine, &env, dir, vlog_options(256, 64 << 20));
        let report = (t.gc)().unwrap();
        assert_eq!(
            report.skipped, 0,
            "{engine}: a reserved horizon never collides with user writes"
        );
        assert_eq!(
            report.relocated, 6,
            "{engine}: every record, final slot included, must relocate"
        );
        assert!(
            report.reclaimed_files >= 1,
            "{engine}: the drained file must be reclaimed in the same pass"
        );
        assert_eq!(
            t.db.get(b"last").unwrap(),
            Some(big_value(42, 1024)),
            "{engine}: relocated record must stay readable"
        );
        for i in 0..5u32 {
            assert_eq!(
                t.db.get(format!("s{i}").as_bytes()).unwrap(),
                Some(big_value(i, 1024))
            );
        }
    }
}

#[test]
fn threshold_zero_never_creates_vlog_files() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-off");
        let t = open_engine(engine, &env, dir, StoreOptions::default());
        for i in 0..50u32 {
            t.db.put(format!("z{i:02}").as_bytes(), &big_value(i, 8192))
                .unwrap();
        }
        t.db.flush().unwrap();
        assert!(
            vlog_files(env.as_ref(), dir).is_empty(),
            "{engine}: separation off must write no vlog files"
        );
        assert_eq!(t.db.stats().vlog_bytes_written, 0);
        let report = (t.gc)().unwrap();
        assert_eq!(
            report,
            VlogGcReport::default(),
            "{engine}: GC must be a no-op"
        );
    }
}

/// Model-based differential: a mixed small/large workload with overwrites,
/// deletes, flushes, GC passes, mid-stream pinned snapshots and a reopen,
/// checked against an in-memory model after every phase — on both engines.
#[test]
fn model_differential_mixed_value_sizes_with_gc_and_reopen() {
    for engine in ENGINES {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/vlog-model");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut next = |bound: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % bound
        };

        let mut t = open_engine(engine, &env, dir, vlog_options(200, 4 << 10));
        type PinnedSnapshot = (
            pebblesdb_common::snapshot::Snapshot,
            BTreeMap<Vec<u8>, Vec<u8>>,
        );
        let mut pinned: Option<PinnedSnapshot> = None;
        for phase in 0..8u32 {
            for _ in 0..120 {
                let key = format!("m{:03}", next(150)).into_bytes();
                match next(10) {
                    0..=5 => {
                        // Put: 60% small, 40% separated.
                        let len = if next(5) < 3 {
                            24
                        } else {
                            300 + next(1500) as usize
                        };
                        let value = big_value(next(100_000) as u32, len);
                        t.db.put(&key, &value).unwrap();
                        model.insert(key, value);
                    }
                    6..=7 => {
                        t.db.delete(&key).unwrap();
                        model.remove(&key);
                    }
                    _ => {
                        assert_eq!(
                            t.db.get(&key).unwrap(),
                            model.get(&key).cloned(),
                            "{engine}: phase {phase} point-get divergence"
                        );
                    }
                }
            }
            match phase {
                1 => t.db.flush().unwrap(),
                2 => {
                    pinned = Some((t.db.snapshot(), model.clone()));
                }
                3 | 6 => {
                    (t.gc)().unwrap();
                }
                4 => {
                    // Snapshot pinned before GC must still read its world.
                    if let Some((snap, snap_model)) = &pinned {
                        for (key, value) in snap_model.iter().take(40) {
                            assert_eq!(
                                t.db.get_opts(&snap.read_options(), key).unwrap().as_ref(),
                                Some(value),
                                "{engine}: snapshot divergence after GC"
                            );
                        }
                    }
                    pinned = None;
                }
                5 => {
                    drop(t);
                    t = open_engine(engine, &env, dir, vlog_options(200, 4 << 10));
                }
                _ => {}
            }
            assert_eq!(
                scan_all(t.db.as_ref()),
                model,
                "{engine}: phase {phase} full-scan divergence"
            );
        }
    }
}
