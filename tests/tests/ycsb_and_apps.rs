//! End-to-end tests driving the YCSB runner and the application layers over
//! the real engines — the full stack Figure 5.5 and Figure 5.6 use.

use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_apps::{HyperDexLike, MongoLike};
use pebblesdb_common::{Db, KvStore, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;
use pebblesdb_ycsb::runner::load_phase;
use pebblesdb_ycsb::{run_workload, CoreWorkload, WorkloadKind};

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 64 << 10;
    opts.max_file_size = 32 << 10;
    opts.base_level_bytes = 128 << 10;
    opts.top_level_bits = 8;
    opts
}

#[test]
fn ycsb_suite_runs_against_pebblesdb_with_four_threads() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let store: Arc<dyn KvStore> =
        Arc::new(PebblesDb::open_with_options(env, Path::new("/ycsb"), small_options()).unwrap());

    let records = 2000u64;
    let workload = CoreWorkload::preset(WorkloadKind::LoadA, records).with_value_size(256);
    load_phase(&store, &workload, 4).unwrap();
    store.flush().unwrap();

    for kind in [
        WorkloadKind::A,
        WorkloadKind::B,
        WorkloadKind::C,
        WorkloadKind::D,
        WorkloadKind::E,
        WorkloadKind::F,
    ] {
        let report = run_workload(Arc::clone(&store), kind, records, 1000, 4, 256).unwrap();
        assert!(report.operations >= 1000, "{}", kind.name());
        assert!(report.kops_per_second() > 0.0, "{}", kind.name());
        assert!(report.latency.count() >= 1000, "{}", kind.name());
        assert!(
            report.latency.percentile(50.0) <= report.latency.percentile(99.0),
            "{}",
            kind.name()
        );
    }
    // The store served real data: workload C is read-only over loaded keys.
    let stats = store.stats();
    assert!(stats.gets > 0);
    assert!(stats.seeks > 0, "workload E must issue range queries");
}

#[test]
fn hyperdex_layer_runs_ycsb_over_both_engines() {
    for use_pebbles in [true, false] {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        // The app layers take a multi-namespace `Db`: their secondary
        // indexes and collections are real column families now.
        let engine: Arc<dyn Db> = if use_pebbles {
            Arc::new(PebblesDb::open_with_options(env, Path::new("/hx"), small_options()).unwrap())
        } else {
            Arc::new(
                LsmDb::open_with_options(
                    env,
                    Path::new("/hx"),
                    small_options(),
                    StorePreset::HyperLevelDb,
                )
                .unwrap(),
            )
        };
        let app: Arc<HyperDexLike> = Arc::new(HyperDexLike::new(engine, 0).unwrap());

        let records = 1000u64;
        let workload = CoreWorkload::preset(WorkloadKind::LoadA, records).with_value_size(128);
        let store: Arc<dyn KvStore> = Arc::clone(&app) as Arc<dyn KvStore>;
        load_phase(&store, &workload, 2).unwrap();
        let report =
            run_workload(Arc::clone(&store), WorkloadKind::A, records, 500, 2, 128).unwrap();
        assert!(report.operations >= 500);
        assert!(report.engine.starts_with("HyperDex("));

        // Values written through the app layer read back through it.
        let key = CoreWorkload::key_for(3);
        let value = app.get(&key).unwrap().expect("loaded key exists");
        // ... and the secondary-index family finds the key by its value.
        assert!(app
            .search_by_value(&value)
            .unwrap()
            .iter()
            .any(|k| k == &key));
    }
}

#[test]
fn mongo_layer_preserves_values_across_engines_and_scans() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let engine: Arc<dyn Db> =
        Arc::new(PebblesDb::open_with_options(env, Path::new("/mongo"), small_options()).unwrap());
    let app = MongoLike::new(engine, 0).unwrap();
    for i in 0..500u32 {
        app.put(
            format!("doc{i:05}").as_bytes(),
            format!("body-{i}").as_bytes(),
        )
        .unwrap();
    }
    app.flush().unwrap();
    assert_eq!(app.get(b"doc00042").unwrap(), Some(b"body-42".to_vec()));
    let scanned = app.scan(b"doc00100", b"doc00110", 100).unwrap();
    assert_eq!(scanned.len(), 10);
    assert_eq!(scanned[0].0, b"doc00100".to_vec());
    assert_eq!(scanned[0].1, b"body-100".to_vec());
    assert_eq!(app.engine_name(), "MongoDB(PebblesDB)");
}
