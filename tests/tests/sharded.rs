//! Sharded-store integration tests: the hash-partitioned [`ShardedDb`] must
//! behave exactly like a reference model under random workloads (including
//! snapshots pinned mid-stream and cross-shard batches), and cross-shard
//! atomicity must survive a crash between a shard staging its sub-batch and
//! the global sequence publish.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebblesdb::PebblesDb;
use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{Db, KvStore, ReadOptions, StoreOptions, StorePreset, WriteBatch};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;
use pebblesdb_shard::{HashPartitioner, Partitioner, PartitionerKind, ShardConfig};

fn tiny_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 8 << 10;
    opts.max_file_size = 8 << 10;
    opts.base_level_bytes = 32 << 10;
    opts.level0_compaction_trigger = 2;
    opts.max_sstables_per_guard = 2;
    opts.top_level_bits = 6;
    opts.bit_decrement = 1;
    opts
}

fn hash_config() -> ShardConfig {
    ShardConfig {
        shards: 4,
        partitioner: PartitionerKind::Hash,
    }
}

/// Opens a sharded store of either policy family by name, so every scenario
/// runs against both the FLSM and the baseline-LSM shards.
fn open_sharded(env: Arc<dyn Env>, dir: &Path, engine: &str, config: ShardConfig) -> Arc<dyn Db> {
    match engine {
        "flsm" => Arc::new(
            PebblesDb::open_sharded(env, dir, tiny_options(), config).expect("open flsm shards"),
        ),
        "lsm" => Arc::new(
            LsmDb::open_sharded(env, dir, tiny_options(), StorePreset::HyperLevelDb, config)
                .expect("open lsm shards"),
        ),
        other => panic!("unknown engine {other}"),
    }
}

fn key_of(id: u16) -> Vec<u8> {
    format!("key{id:05}").into_bytes()
}

/// One step of the model-based differential test.
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    /// A batch mixing puts and deletes; with 4 hash shards almost every
    /// multi-record batch is cross-shard.
    Batch(Vec<(u16, Option<Vec<u8>>)>),
    Scan(u16, u8),
    PinSnapshot,
}

fn random_op(rng: &mut StdRng) -> Op {
    let key = rng.gen_range(0..512u16);
    match rng.gen_range(0..8u32) {
        0..=2 => {
            let len = rng.gen_range(0..64usize);
            Op::Put(key, (0..len).map(|_| rng.gen::<u8>()).collect())
        }
        3 => Op::Delete(key),
        4..=5 => {
            let count = rng.gen_range(2..10usize);
            Op::Batch(
                (0..count)
                    .map(|_| {
                        let id = rng.gen_range(0..512u16);
                        if rng.gen_range(0..4u32) == 0 {
                            (id, None)
                        } else {
                            let len = rng.gen_range(0..48usize);
                            (id, Some((0..len).map(|_| rng.gen::<u8>()).collect()))
                        }
                    })
                    .collect(),
            )
        }
        6 => Op::Scan(key, rng.gen::<u8>()),
        _ => Op::PinSnapshot,
    }
}

/// Applies `ops` to the store and the model in lockstep, pinning snapshots
/// mid-stream; at the end every pinned snapshot must replay its frozen
/// model, and the live store must agree with the live model before and
/// after a full flush.
fn check_sharded_against_model(store: &dyn Db, ops: Vec<Op>) {
    type Model = BTreeMap<Vec<u8>, Vec<u8>>;
    let mut model: Model = BTreeMap::new();
    let mut pinned: Vec<(Snapshot, Model)> = Vec::new();
    for op in &ops {
        match op {
            Op::Put(id, value) => {
                store.put(&key_of(*id), value).unwrap();
                model.insert(key_of(*id), value.clone());
            }
            Op::Delete(id) => {
                store.delete(&key_of(*id)).unwrap();
                model.remove(&key_of(*id));
            }
            Op::Batch(entries) => {
                let mut batch = WriteBatch::new();
                for (id, value) in entries {
                    match value {
                        Some(value) => batch.put(&key_of(*id), value),
                        None => batch.delete(&key_of(*id)),
                    }
                }
                store.write(batch).unwrap();
                for (id, value) in entries {
                    match value {
                        Some(value) => model.insert(key_of(*id), value.clone()),
                        None => model.remove(&key_of(*id)),
                    };
                }
            }
            Op::Scan(id, limit) => {
                let limit = (*limit as usize % 20) + 1;
                let got = store.scan(&key_of(*id), &[], limit).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key_of(*id)..)
                    .take(limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expected, "scan from {id} with limit {limit}");
            }
            Op::PinSnapshot => pinned.push((store.snapshot(), model.clone())),
        }
    }

    // Every snapshot pinned mid-stream replays its oracle exactly, even
    // though the store kept moving (and flushing) after the pin.
    for check_after_flush in [false, true] {
        if check_after_flush {
            store.flush().unwrap();
        }
        for (index, (snap, frozen)) in pinned.iter().enumerate() {
            let mut opts = ReadOptions::default();
            opts.snapshot = Some(snap.sequence());
            let got = store.scan_opts(&opts, b"key", &[], 10_000).unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> =
                frozen.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(
                got, expected,
                "snapshot {index} drifted (after_flush={check_after_flush})"
            );
        }
        for id in 0..512u16 {
            assert_eq!(
                store.get(&key_of(id)).unwrap(),
                model.get(&key_of(id)).cloned(),
                "key {id} (after_flush={check_after_flush})"
            );
        }
        let got = store.scan(b"key", &[], 10_000).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, expected, "full scan (after_flush={check_after_flush})");
    }
}

#[test]
fn sharded_stores_match_model_with_snapshots() {
    for engine in ["flsm", "lsm"] {
        let mut rng = StdRng::seed_from_u64(0x5eed_5a4d);
        for case in 0..4 {
            let count = rng.gen_range(50..400usize);
            let ops: Vec<Op> = (0..count).map(|_| random_op(&mut rng)).collect();
            let env: Arc<dyn Env> = Arc::new(MemEnv::new());
            let store = open_sharded(env, Path::new("/sharded-prop"), engine, hash_config());
            eprintln!("{engine} case {case}: {count} ops");
            check_sharded_against_model(store.as_ref(), ops);
        }
    }
}

#[test]
fn sharded_store_survives_reopen() {
    for engine in ["flsm", "lsm"] {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let dir = Path::new("/sharded-reopen");
        {
            let store = open_sharded(Arc::clone(&env), dir, engine, hash_config());
            for i in 0..800u16 {
                store.put(&key_of(i), format!("v{i}").as_bytes()).unwrap();
            }
            // A flushed prefix plus WAL-only tail on every shard.
            store.flush().unwrap();
            for i in 800..900u16 {
                store.put(&key_of(i), format!("v{i}").as_bytes()).unwrap();
            }
        }
        let store = open_sharded(Arc::clone(&env), dir, engine, hash_config());
        for i in 0..900u16 {
            assert_eq!(
                store.get(&key_of(i)).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{engine} key {i}"
            );
        }
        let scanned = store.scan(b"key", &[], 10_000).unwrap();
        assert_eq!(scanned.len(), 900, "{engine}");
        env.remove_dir_all(dir).unwrap();
    }
}

#[test]
fn reopening_with_a_different_topology_is_refused() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/sharded-meta");
    {
        let store = open_sharded(Arc::clone(&env), dir, "flsm", hash_config());
        store.put(b"k", b"v").unwrap();
    }
    let wrong_count = ShardConfig {
        shards: 2,
        partitioner: PartitionerKind::Hash,
    };
    assert!(
        PebblesDb::open_sharded(Arc::clone(&env), dir, tiny_options(), wrong_count).is_err(),
        "shard-count mismatch must be refused"
    );
    let wrong_partitioner = ShardConfig {
        shards: 4,
        partitioner: PartitionerKind::Range,
    };
    assert!(
        PebblesDb::open_sharded(Arc::clone(&env), dir, tiny_options(), wrong_partitioner).is_err(),
        "partitioner mismatch must be refused"
    );
    // The original topology still opens.
    let store = open_sharded(Arc::clone(&env), dir, "flsm", hash_config());
    assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn range_partitioned_scans_stay_globally_sorted() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = ShardConfig {
        shards: 4,
        partitioner: PartitionerKind::Range,
    };
    let store = open_sharded(env, Path::new("/sharded-range"), "flsm", config);
    // Leading bytes spread across all four range buckets.
    for i in 0..1024u32 {
        let key = vec![(i % 256) as u8, (i / 256) as u8];
        store.put(&key, format!("v{i}").as_bytes()).unwrap();
    }
    store.flush().unwrap();
    let got = store.scan(&[], &[], 10_000).unwrap();
    assert_eq!(got.len(), 1024);
    assert!(
        got.windows(2).all(|w| w[0].0 < w[1].0),
        "merged scan must be sorted across range shards"
    );
}

/// Two keys that the 4-way hash partitioner routes to shards 0 and 1, in
/// that order — so a batch holding both stages shard 0 first and shard 1
/// second, and a fault on shard 1's WAL leaves the batch half-staged.
fn keys_on_shards_0_and_1() -> (Vec<u8>, Vec<u8>) {
    let partitioner = HashPartitioner;
    let mut on_zero = None;
    let mut on_one = None;
    for i in 0..10_000u32 {
        let key = format!("atomic{i:05}").into_bytes();
        match partitioner.shard_of(&key, 4) {
            0 if on_zero.is_none() => on_zero = Some(key),
            1 if on_one.is_none() => on_one = Some(key),
            _ => {}
        }
        if on_zero.is_some() && on_one.is_some() {
            break;
        }
    }
    (on_zero.unwrap(), on_one.unwrap())
}

#[test]
fn cross_shard_batch_interrupted_mid_stage_recovers_atomically() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/sharded-crash");
        let (key_a, key_b) = keys_on_shards_0_and_1();
        {
            let store = open_sharded(Arc::clone(&env), dir, engine, hash_config());
            store.put(b"base", b"line").unwrap();

            // Kill shard 1's WAL: the cross-shard batch journals, stages its
            // shard-0 slice, then dies staging shard 1 — exactly the window
            // between sub-batch staging and the global sequence publish.
            mem_env.inject_write_error_after("shard-1/", 0);
            let mut batch = WriteBatch::new();
            batch.put(&key_a, b"half");
            batch.put(&key_b, b"other-half");
            assert!(store.write(batch).is_err(), "{engine}: staging must fail");

            // Atomicity before the crash: the shard-0 slice is staged but
            // unpublished, so no reader may see it.
            mem_env.clear_fault_injection();
            assert_eq!(
                store.get(&key_a).unwrap(),
                None,
                "{engine}: half-staged batch leaked to a reader"
            );
            assert_eq!(store.get(&key_b).unwrap(), None, "{engine}");
            let snap = store.snapshot();
            let mut opts = ReadOptions::default();
            opts.snapshot = Some(snap.sequence());
            assert_eq!(store.get_opts(&opts, &key_a).unwrap(), None, "{engine}");

            // The store is poisoned: later writes are refused rather than
            // silently reordered around the frozen watermark.
            assert!(store.put(b"after", b"fail").is_err(), "{engine}");
        }

        // "Crash" (drop the handles) and reopen: journal replay rolls the
        // batch forward into both shards — all-or-nothing, here "all".
        let store = open_sharded(Arc::clone(&env), dir, engine, hash_config());
        assert_eq!(store.get(b"base").unwrap(), Some(b"line".to_vec()));
        assert_eq!(
            store.get(&key_a).unwrap(),
            Some(b"half".to_vec()),
            "{engine}: journal replay must complete the batch"
        );
        assert_eq!(
            store.get(&key_b).unwrap(),
            Some(b"other-half".to_vec()),
            "{engine}"
        );
        // And the store writes normally again.
        store.put(b"after", b"recovered").unwrap();
        assert_eq!(store.get(b"after").unwrap(), Some(b"recovered".to_vec()));
        env.remove_dir_all(dir).unwrap();
    }
}

#[test]
fn cross_shard_batch_whose_journal_append_fails_applies_nothing() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/sharded-journal-fail");
    let (key_a, key_b) = keys_on_shards_0_and_1();
    {
        let store = open_sharded(Arc::clone(&env), dir, "flsm", hash_config());
        store.put(b"base", b"line").unwrap();
        mem_env.inject_write_error_after("journal-", 0);
        let mut batch = WriteBatch::new();
        batch.put(&key_a, b"x");
        batch.put(&key_b, b"y");
        assert!(store.write(batch).is_err());
        mem_env.clear_fault_injection();
        assert_eq!(store.get(&key_a).unwrap(), None);
        assert_eq!(store.get(&key_b).unwrap(), None);
    }
    // Nothing was journaled or staged: after reopen the batch is absent on
    // every shard ("all-or-nothing", here "nothing").
    let store = open_sharded(Arc::clone(&env), dir, "flsm", hash_config());
    assert_eq!(store.get(b"base").unwrap(), Some(b"line".to_vec()));
    assert_eq!(store.get(&key_a).unwrap(), None);
    assert_eq!(store.get(&key_b).unwrap(), None);
}

#[test]
fn sharded_column_families_route_and_aggregate() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let store = open_sharded(env, Path::new("/sharded-cf"), "flsm", hash_config());
    let users = store.create_cf("users").unwrap();
    let events = store.create_cf("events").unwrap();
    for i in 0..200u16 {
        users.put(&key_of(i), format!("u{i}").as_bytes()).unwrap();
        events.put(&key_of(i), format!("e{i}").as_bytes()).unwrap();
    }
    // Families are isolated even though they share the shards.
    assert_eq!(users.get(&key_of(7)).unwrap(), Some(b"u7".to_vec()));
    assert_eq!(events.get(&key_of(7)).unwrap(), Some(b"e7".to_vec()));
    assert_eq!(store.get(&key_of(7)).unwrap(), None, "default cf untouched");

    // A batch spanning families and shards commits atomically.
    let mut batch = WriteBatch::new();
    let (key_a, key_b) = keys_on_shards_0_and_1();
    batch.put_cf(users.id(), &key_a, b"alice");
    batch.put_cf(events.id(), &key_b, b"login");
    store.write(batch).unwrap();
    assert_eq!(users.get(&key_a).unwrap(), Some(b"alice".to_vec()));
    assert_eq!(events.get(&key_b).unwrap(), Some(b"login".to_vec()));

    let stats = store.cf_stats();
    assert_eq!(stats.len(), 3, "default + users + events");

    // Aggregate store stats advertise the topology; the per-shard view has
    // one entry per shard.
    assert_eq!(store.stats().num_shards, 4);
    let per_shard = store.shard_stats();
    assert_eq!(per_shard.len(), 4);
    let summed: u64 = per_shard.iter().map(|s| s.user_bytes_written).sum();
    assert_eq!(summed, store.stats().user_bytes_written);

    store.drop_cf("events").unwrap();
    assert!(store.cf("events").is_none());
    assert!(store.list_cfs().iter().any(|n| n == "users"));

    // Writes addressed at the dropped family fail cleanly and do not poison
    // the store.
    let mut stale = WriteBatch::new();
    stale.put_cf(events.id(), b"zombie", b"write");
    assert!(store.write(stale).is_err());
    store.put(b"alive", b"yes").unwrap();
    assert_eq!(store.get(b"alive").unwrap(), Some(b"yes".to_vec()));
}
