//! Cross-engine integration tests: every engine must agree with an in-memory
//! model and with each other on the same workload — including reads through
//! pinned snapshots and streaming cursors.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_btree::BTreeStore;
use pebblesdb_common::{Db, KvStore, ReadOptions, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 32 << 10;
    opts.max_file_size = 16 << 10;
    opts.base_level_bytes = 64 << 10;
    opts.level0_compaction_trigger = 2;
    opts.top_level_bits = 8;
    opts.bit_decrement = 1;
    opts
}

fn all_engines() -> Vec<(&'static str, Arc<dyn KvStore>)> {
    let opts = small_options();
    let pebbles_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let lsm_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let rocks_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let btree_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    // Column-family handles are full `KvStore`s: one non-default family per
    // LSM engine runs the *same* suites as the whole stores, unmodified.
    // The handles keep their stores (and background threads) alive.
    let pebbles_cf_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let pebbles_cf = PebblesDb::open_with_options(pebbles_cf_env, Path::new("/pcf"), opts.clone())
        .unwrap()
        .create_cf("shard")
        .unwrap();
    let lsm_cf_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let lsm_cf = LsmDb::open_with_options(
        lsm_cf_env,
        Path::new("/hcf"),
        opts.clone(),
        StorePreset::HyperLevelDb,
    )
    .unwrap()
    .create_cf("shard")
    .unwrap();
    vec![
        (
            "pebblesdb",
            Arc::new(
                PebblesDb::open_with_options(pebbles_env, Path::new("/p"), opts.clone()).unwrap(),
            ) as Arc<dyn KvStore>,
        ),
        (
            "hyperleveldb",
            Arc::new(
                LsmDb::open_with_options(
                    lsm_env,
                    Path::new("/h"),
                    opts.clone(),
                    StorePreset::HyperLevelDb,
                )
                .unwrap(),
            ),
        ),
        (
            "rocksdb",
            Arc::new(
                LsmDb::open_with_options(
                    rocks_env,
                    Path::new("/r"),
                    opts.clone(),
                    StorePreset::RocksDb,
                )
                .unwrap(),
            ),
        ),
        (
            "btree",
            Arc::new(BTreeStore::open(btree_env, Path::new("/b"), opts).unwrap()),
        ),
        ("pebblesdb-cf", Arc::new(pebbles_cf)),
        ("hyperleveldb-cf", Arc::new(lsm_cf)),
    ]
}

/// Applies the same randomized workload of puts, deletes and overwrites to
/// every engine and to a `BTreeMap` model, then checks point reads and range
/// scans agree with the model.
#[test]
fn engines_agree_with_model_on_mixed_workload() {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let engines = all_engines();
    let mut rng = StdRng::seed_from_u64(2024);

    for op in 0..8000u32 {
        let key = format!("key{:05}", rng.gen_range(0..2000u32)).into_bytes();
        if rng.gen_bool(0.8) {
            let value = format!("value-{op}").into_bytes();
            for (_, engine) in &engines {
                engine.put(&key, &value).unwrap();
            }
            model.insert(key, value);
        } else {
            for (_, engine) in &engines {
                engine.delete(&key).unwrap();
            }
            model.remove(&key);
        }
    }
    for (_, engine) in &engines {
        engine.flush().unwrap();
    }

    // Point reads.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let key = format!("key{:05}", rng.gen_range(0..2100u32)).into_bytes();
        let expected = model.get(&key).cloned();
        for (name, engine) in &engines {
            assert_eq!(engine.get(&key).unwrap(), expected, "{name} get {key:?}");
        }
    }

    // Range scans.
    for start in [0u32, 123, 999, 1990] {
        let start_key = format!("key{start:05}").into_bytes();
        let end_key = format!("key{:05}", start + 50).into_bytes();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(start_key.clone()..end_key.clone())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, engine) in &engines {
            let got = engine.scan(&start_key, &end_key, 10_000).unwrap();
            assert_eq!(got, expected, "{name} scan from {start}");
        }
    }

    // Bounded scans respect the limit.
    for (name, engine) in &engines {
        let got = engine.scan(b"key", &[], 7).unwrap();
        assert!(got.len() <= 7, "{name} limit");
    }
}

/// The FLSM engine must write less to the device than the LSM baseline for
/// the same random-update workload, while the B+Tree writes the most — the
/// paper's central claim at integration scale.
#[test]
fn write_amplification_ordering_matches_the_paper() {
    let engines = all_engines();
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..10_000u32 {
        let key = format!("key{:05}", rng.gen_range(0..5000u32)).into_bytes();
        let value = vec![b'v'; 200];
        for (_, engine) in &engines {
            engine.put(&key, &value).unwrap();
        }
    }
    for (_, engine) in &engines {
        engine.flush().unwrap();
    }
    let amp: std::collections::HashMap<&str, f64> = engines
        .iter()
        .map(|(name, engine)| (*name, engine.stats().write_amplification()))
        .collect();

    assert!(
        amp["pebblesdb"] < amp["hyperleveldb"],
        "PebblesDB {:.2} should beat the LSM baseline {:.2}",
        amp["pebblesdb"],
        amp["hyperleveldb"]
    );
    assert!(
        amp["btree"] > amp["hyperleveldb"],
        "the B+Tree {:.2} should be worse than any LSM {:.2}",
        amp["btree"],
        amp["hyperleveldb"]
    );
}

/// Snapshot isolation, on every engine: writes issued after `snapshot()`
/// are invisible to `get_opts` and `iter` on that snapshot — across
/// overwrites, deletes, fresh inserts, flushes and the compactions they
/// trigger — while latest reads see everything.
#[test]
fn snapshots_isolate_reads_on_every_engine() {
    for (name, engine) in all_engines() {
        // Base state the snapshot will pin.
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for i in 0..800u32 {
            let key = format!("key{i:05}").into_bytes();
            let value = format!("base-{i}").into_bytes();
            engine.put(&key, &value).unwrap();
            model.insert(key, value);
        }

        let snap = engine.snapshot();
        let snap_opts = snap.read_options();

        // Mutate heavily after the snapshot: overwrite, delete, insert —
        // enough churn to force memtable flushes and compactions past it.
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..4u32 {
            for i in 0..800u32 {
                let key = format!("key{i:05}").into_bytes();
                match rng.gen_range(0..3u32) {
                    0 => engine
                        .put(&key, format!("new-{round}-{i}").as_bytes())
                        .unwrap(),
                    1 => engine.delete(&key).unwrap(),
                    _ => {}
                }
            }
            for i in 0..200u32 {
                engine
                    .put(format!("zzz{round:02}{i:05}").as_bytes(), b"late")
                    .unwrap();
            }
            engine.flush().unwrap();
        }

        // Point reads through the snapshot see exactly the base state.
        for i in (0..800u32).step_by(7) {
            let key = format!("key{i:05}").into_bytes();
            assert_eq!(
                engine.get_opts(&snap_opts, &key).unwrap(),
                model.get(&key).cloned(),
                "{name} snapshot get key{i:05}"
            );
        }
        // Late inserts are invisible through the snapshot.
        assert_eq!(
            engine.get_opts(&snap_opts, b"zzz0000001").unwrap(),
            None,
            "{name} snapshot hides late insert"
        );

        // The snapshot cursor streams exactly the base state, in order.
        let mut iter = engine.iter(&snap_opts).unwrap();
        iter.seek(b"key");
        let mut streamed: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        while iter.valid() && iter.key() < b"z".as_slice() {
            streamed.push((iter.key().to_vec(), iter.value().to_vec()));
            iter.next();
        }
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(streamed, expected, "{name} snapshot cursor");
        drop(iter);

        // Latest reads observe the churn (at least one key must differ).
        let latest = engine.scan(b"key", b"z", 10_000).unwrap();
        assert_ne!(latest, expected, "{name} latest reads see new writes");

        // Dropping the snapshot releases it: a fresh snapshot pins the new
        // state, not the old one.
        drop(snap);
        let fresh = engine.snapshot();
        assert_eq!(
            engine
                .get_opts(&fresh.read_options(), b"zzz0000001")
                .unwrap(),
            engine.get(b"zzz0000001").unwrap(),
            "{name} fresh snapshot sees current state"
        );
    }
}

/// Forward and backward cursor traversal agree with the materialised `scan`
/// on randomized content — the cursor is the source of truth `scan` is
/// defined on, so walking it both ways must reproduce the same entries.
#[test]
fn cursor_traversal_matches_scan_forward_and_backward() {
    let engines = all_engines();
    let mut rng = StdRng::seed_from_u64(4242);
    for op in 0..4000u32 {
        let key = format!("key{:05}", rng.gen_range(0..1200u32)).into_bytes();
        if rng.gen_bool(0.75) {
            let value = format!("v{op}").into_bytes();
            for (_, engine) in &engines {
                engine.put(&key, &value).unwrap();
            }
        } else {
            for (_, engine) in &engines {
                engine.delete(&key).unwrap();
            }
        }
    }
    for (name, engine) in &engines {
        engine.flush().unwrap();
        let scanned = engine.scan(b"", &[], 100_000).unwrap();

        let mut iter = engine.iter(&ReadOptions::default()).unwrap();
        iter.seek_to_first();
        let mut forward = Vec::new();
        while iter.valid() {
            forward.push((iter.key().to_vec(), iter.value().to_vec()));
            iter.next();
        }
        assert_eq!(forward, scanned, "{name} forward traversal");

        iter.seek_to_last();
        let mut backward = Vec::new();
        while iter.valid() {
            backward.push((iter.key().to_vec(), iter.value().to_vec()));
            iter.prev();
        }
        backward.reverse();
        assert_eq!(backward, scanned, "{name} backward traversal");

        // Mid-stream seeks land on the scan's lower bound.
        let probe = b"key00600".to_vec();
        let expected_at = scanned
            .iter()
            .find(|(k, _)| k.as_slice() >= probe.as_slice());
        iter.seek(&probe);
        match expected_at {
            Some((k, v)) => {
                assert!(iter.valid(), "{name} seek lands");
                assert_eq!((iter.key(), iter.value()), (k.as_slice(), v.as_slice()));
            }
            None => assert!(!iter.valid(), "{name} seek past end"),
        }
    }
}

/// Engines expose consistent statistics after a workload.
#[test]
fn stats_are_consistent_across_engines() {
    let engines = all_engines();
    for (_, engine) in &engines {
        for i in 0..2000u32 {
            engine
                .put(format!("k{i:06}").as_bytes(), &[b'x'; 128])
                .unwrap();
        }
        engine.flush().unwrap();
    }
    for (name, engine) in &engines {
        let stats = engine.stats();
        assert!(stats.user_bytes_written >= 2000 * 128, "{name}");
        assert!(stats.bytes_written >= stats.user_bytes_written, "{name}");
        assert!(stats.disk_bytes_live > 0, "{name}");
        assert!(!engine.engine_name().is_empty(), "{name}");
    }
}
