//! Cross-engine integration tests: every engine must agree with an in-memory
//! model and with each other on the same workload.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_btree::BTreeStore;
use pebblesdb_common::{KvStore, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 32 << 10;
    opts.max_file_size = 16 << 10;
    opts.base_level_bytes = 64 << 10;
    opts.level0_compaction_trigger = 2;
    opts.top_level_bits = 8;
    opts.bit_decrement = 1;
    opts
}

fn all_engines() -> Vec<(&'static str, Arc<dyn KvStore>)> {
    let opts = small_options();
    let pebbles_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let lsm_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let rocks_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let btree_env: Arc<dyn Env> = Arc::new(MemEnv::new());
    vec![
        (
            "pebblesdb",
            Arc::new(PebblesDb::open_with_options(pebbles_env, Path::new("/p"), opts.clone()).unwrap())
                as Arc<dyn KvStore>,
        ),
        (
            "hyperleveldb",
            Arc::new(
                LsmDb::open_with_options(lsm_env, Path::new("/h"), opts.clone(), StorePreset::HyperLevelDb)
                    .unwrap(),
            ),
        ),
        (
            "rocksdb",
            Arc::new(
                LsmDb::open_with_options(rocks_env, Path::new("/r"), opts.clone(), StorePreset::RocksDb)
                    .unwrap(),
            ),
        ),
        (
            "btree",
            Arc::new(BTreeStore::open(btree_env, Path::new("/b"), opts).unwrap()),
        ),
    ]
}

/// Applies the same randomized workload of puts, deletes and overwrites to
/// every engine and to a `BTreeMap` model, then checks point reads and range
/// scans agree with the model.
#[test]
fn engines_agree_with_model_on_mixed_workload() {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let engines = all_engines();
    let mut rng = StdRng::seed_from_u64(2024);

    for op in 0..8000u32 {
        let key = format!("key{:05}", rng.gen_range(0..2000u32)).into_bytes();
        if rng.gen_bool(0.8) {
            let value = format!("value-{op}").into_bytes();
            for (_, engine) in &engines {
                engine.put(&key, &value).unwrap();
            }
            model.insert(key, value);
        } else {
            for (_, engine) in &engines {
                engine.delete(&key).unwrap();
            }
            model.remove(&key);
        }
    }
    for (_, engine) in &engines {
        engine.flush().unwrap();
    }

    // Point reads.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let key = format!("key{:05}", rng.gen_range(0..2100u32)).into_bytes();
        let expected = model.get(&key).cloned();
        for (name, engine) in &engines {
            assert_eq!(engine.get(&key).unwrap(), expected, "{name} get {key:?}");
        }
    }

    // Range scans.
    for start in [0u32, 123, 999, 1990] {
        let start_key = format!("key{start:05}").into_bytes();
        let end_key = format!("key{:05}", start + 50).into_bytes();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(start_key.clone()..end_key.clone())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, engine) in &engines {
            let got = engine.scan(&start_key, &end_key, 10_000).unwrap();
            assert_eq!(got, expected, "{name} scan from {start}");
        }
    }

    // Bounded scans respect the limit.
    for (name, engine) in &engines {
        let got = engine.scan(b"key", &[], 7).unwrap();
        assert!(got.len() <= 7, "{name} limit");
    }
}

/// The FLSM engine must write less to the device than the LSM baseline for
/// the same random-update workload, while the B+Tree writes the most — the
/// paper's central claim at integration scale.
#[test]
fn write_amplification_ordering_matches_the_paper() {
    let engines = all_engines();
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..10_000u32 {
        let key = format!("key{:05}", rng.gen_range(0..5000u32)).into_bytes();
        let value = vec![b'v'; 200];
        for (_, engine) in &engines {
            engine.put(&key, &value).unwrap();
        }
    }
    for (_, engine) in &engines {
        engine.flush().unwrap();
    }
    let amp: std::collections::HashMap<&str, f64> = engines
        .iter()
        .map(|(name, engine)| (*name, engine.stats().write_amplification()))
        .collect();

    assert!(
        amp["pebblesdb"] < amp["hyperleveldb"],
        "PebblesDB {:.2} should beat the LSM baseline {:.2}",
        amp["pebblesdb"],
        amp["hyperleveldb"]
    );
    assert!(
        amp["btree"] > amp["hyperleveldb"],
        "the B+Tree {:.2} should be worse than any LSM {:.2}",
        amp["btree"],
        amp["hyperleveldb"]
    );
}

/// Engines expose consistent statistics after a workload.
#[test]
fn stats_are_consistent_across_engines() {
    let engines = all_engines();
    for (_, engine) in &engines {
        for i in 0..2000u32 {
            engine
                .put(format!("k{i:06}").as_bytes(), &vec![b'x'; 128])
                .unwrap();
        }
        engine.flush().unwrap();
    }
    for (name, engine) in &engines {
        let stats = engine.stats();
        assert!(stats.user_bytes_written >= 2000 * 128, "{name}");
        assert!(stats.bytes_written >= stats.user_bytes_written, "{name}");
        assert!(stats.disk_bytes_live > 0, "{name}");
        assert!(!engine.engine_name().is_empty(), "{name}");
    }
}
