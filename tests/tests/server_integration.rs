//! End-to-end tests of the RESP network front-end: concurrent clients over
//! real sockets against a live [`Server`], exercising batch atomicity,
//! cursor-paged scans, rate-limit backpressure, auth gating, graceful
//! shutdown draining, and crash recovery after an abrupt kill.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use pebblesdb::PebblesDb;
use pebblesdb_common::resp::RespValue;
use pebblesdb_common::{Db, KvStore};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_server::{RateLimit, RespClient, Server, ServerConfig, StaticTokenAuth};

fn start_server(config: ServerConfig) -> (Server, Arc<dyn Db>) {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db: Arc<dyn Db> = Arc::new(PebblesDb::open(env, Path::new("/server-it")).unwrap());
    let server = Server::start(Arc::clone(&db), config).unwrap();
    (server, db)
}

fn ok(reply: RespValue) {
    assert_eq!(reply, RespValue::ok());
}

#[test]
fn concurrent_clients_batches_stay_atomic_and_scans_stay_ordered() {
    let (server, _db) = start_server(ServerConfig::default());
    let addr = server.local_addr();

    {
        let mut admin = RespClient::connect(addr).unwrap();
        ok(admin.command(&[b"CFCREATE", b"mirror"]).unwrap());
    }

    const WRITERS: usize = 4;
    const BATCHES: u64 = 150;

    // Writers commit MULTI batches that write the same key to two column
    // families — the invariant readers check is that no one ever observes
    // the default-family half without the mirror half.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut conn = RespClient::connect(addr).unwrap();
                for i in 0..BATCHES {
                    let key = format!("pair{:02}{:04}", w, i).into_bytes();
                    ok(conn.command(&[b"SELECT", b"default"]).unwrap());
                    ok(conn.command(&[b"MULTI"]).unwrap());
                    conn.command(&[b"SET", &key, b"x"]).unwrap();
                    ok(conn.command(&[b"SELECT", b"mirror"]).unwrap());
                    conn.command(&[b"SET", &key, b"x"]).unwrap();
                    let reply = conn.command(&[b"EXEC"]).unwrap();
                    assert_eq!(reply, RespValue::Array(vec![RespValue::ok(); 2]));
                }
            })
        })
        .collect();

    // Readers sample the invariant while writers run: seeing the default
    // half means the whole batch committed, so the mirror half must exist.
    let readers: Vec<_> = (0..2u64)
        .map(|r| {
            std::thread::spawn(move || {
                let mut conn = RespClient::connect(addr).unwrap();
                let mut observed = 0u64;
                for round in 0..400u64 {
                    let key = format!(
                        "pair{:02}{:04}",
                        (r + round) % WRITERS as u64,
                        round % BATCHES
                    )
                    .into_bytes();
                    ok(conn.command(&[b"SELECT", b"default"]).unwrap());
                    let first = conn.command(&[b"GET", &key]).unwrap();
                    if let RespValue::Bulk(_) = first {
                        ok(conn.command(&[b"SELECT", b"mirror"]).unwrap());
                        let second = conn.command(&[b"GET", &key]).unwrap();
                        assert!(
                            matches!(second, RespValue::Bulk(_)),
                            "saw default half of {} without its mirror half",
                            String::from_utf8_lossy(&key)
                        );
                        observed += 1;
                    }
                }
                observed
            })
        })
        .collect();

    // A scanner pages through the default family while writes land. Every
    // page is one bounded server-side cursor, and across pages keys must
    // stay strictly increasing (no duplicates, no going backwards).
    let scanner = std::thread::spawn(move || {
        let mut conn = RespClient::connect(addr).unwrap();
        for _ in 0..10 {
            let mut cursor: Vec<u8> = Vec::new();
            let mut last: Option<Vec<u8>> = None;
            loop {
                let reply = conn.command(&[b"SCAN", &cursor, b"COUNT", b"50"]).unwrap();
                let RespValue::Array(parts) = reply else {
                    panic!("SCAN must return [cursor, entries]")
                };
                let RespValue::Bulk(next) = &parts[0] else {
                    panic!()
                };
                let RespValue::Array(flat) = &parts[1] else {
                    panic!()
                };
                for pair in flat.chunks(2) {
                    let RespValue::Bulk(key) = &pair[0] else {
                        panic!()
                    };
                    if let Some(prev) = &last {
                        assert!(key > prev, "scan went backwards or repeated a key");
                    }
                    last = Some(key.clone());
                }
                if next.is_empty() {
                    break;
                }
                cursor = next.clone();
            }
        }
    });

    for writer in writers {
        writer.join().unwrap();
    }
    scanner.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }

    // Post-quiescence: every batch is fully present in both families.
    let mut conn = RespClient::connect(addr).unwrap();
    for family in [b"default".as_slice(), b"mirror".as_slice()] {
        ok(conn.command(&[b"SELECT", family]).unwrap());
        let mut count = 0u64;
        let mut cursor: Vec<u8> = b"pair".to_vec();
        loop {
            let reply = conn
                .command(&[b"SCAN", &cursor, b"END", b"pair~", b"COUNT", b"100"])
                .unwrap();
            let RespValue::Array(parts) = reply else {
                panic!()
            };
            let (RespValue::Bulk(next), RespValue::Array(flat)) = (&parts[0], &parts[1]) else {
                panic!()
            };
            count += (flat.len() / 2) as u64;
            if next.is_empty() {
                break;
            }
            cursor = next.clone();
        }
        assert_eq!(count, WRITERS as u64 * BATCHES);
    }
    server.shutdown();
}

#[test]
fn rate_limited_client_gets_busy_backpressure_not_a_disconnect() {
    let mut config = ServerConfig::default();
    config.rate_limit = Some(RateLimit {
        ops_per_sec: 100.0,
        burst: 5.0,
    });
    let (server, _db) = start_server(config);

    let mut conn = RespClient::connect(server.local_addr()).unwrap();
    let mut busy = 0;
    for i in 0..200u32 {
        let reply = conn
            .command(&[b"SET", format!("k{i}").as_bytes(), b"v"])
            .unwrap();
        match reply {
            RespValue::Error(msg) => {
                assert!(msg.starts_with("BUSY"), "unexpected error: {msg}");
                busy += 1;
            }
            other => assert_eq!(other, RespValue::ok()),
        }
    }
    assert!(
        busy > 0,
        "a 5-op burst must trip within 200 back-to-back ops"
    );
    assert!(
        server
            .counters()
            .rate_limited
            .load(std::sync::atomic::Ordering::Relaxed)
            >= busy
    );

    // The same connection recovers once tokens refill: backpressure, not
    // punishment.
    std::thread::sleep(Duration::from_millis(100));
    let reply = conn.command(&[b"PING"]).unwrap();
    assert_eq!(reply, RespValue::Simple("PONG".to_string()));
    server.shutdown();
}

#[test]
fn auth_is_deny_by_default_over_the_wire() {
    let mut config = ServerConfig::default();
    config.auth = Some(Arc::new(StaticTokenAuth::new("hunter2")));
    let (server, _db) = start_server(config);

    let mut conn = RespClient::connect(server.local_addr()).unwrap();
    let denied = conn.command(&[b"GET", b"k"]).unwrap();
    assert!(matches!(denied, RespValue::Error(msg) if msg.starts_with("NOAUTH")));
    let wrong = conn.command(&[b"AUTH", b"guess"]).unwrap();
    assert!(matches!(wrong, RespValue::Error(msg) if msg.starts_with("WRONGPASS")));
    ok(conn.command(&[b"AUTH", b"hunter2"]).unwrap());
    ok(conn.command(&[b"SET", b"k", b"v"]).unwrap());

    // A second, fresh connection starts denied again.
    let mut other = RespClient::connect(server.local_addr()).unwrap();
    let denied = other.command(&[b"GET", b"k"]).unwrap();
    assert!(matches!(denied, RespValue::Error(msg) if msg.starts_with("NOAUTH")));
    server.shutdown();
}

#[test]
fn protocol_violations_answer_an_error_and_close_only_that_connection() {
    let (server, _db) = start_server(ServerConfig::default());
    let addr = server.local_addr();

    // Raw garbage that can never be a RESP frame.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"!!not resp at all\r\n").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("-ERR"), "got: {text}");

    // The server is still healthy for well-behaved clients.
    let mut conn = RespClient::connect(addr).unwrap();
    ok(conn.command(&[b"SET", b"still", b"up"]).unwrap());
    assert!(
        server
            .counters()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_pipelined_writes_before_closing() {
    let (server, db) = start_server(ServerConfig::default());

    const PIPELINED: u32 = 200;
    let mut conn = RespClient::connect(server.local_addr()).unwrap();
    for i in 0..PIPELINED {
        conn.send(&[b"SET", format!("drain{i:04}").as_bytes(), b"v"])
            .unwrap();
    }
    // Give the connection thread a moment to pull the burst off the socket,
    // then shut down while replies may still be streaming back.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();

    // Every pipelined write the server accepted before closing is in the
    // store — shutdown drained in-flight commands instead of dropping them.
    for i in 0..PIPELINED {
        let key = format!("drain{i:04}");
        assert_eq!(
            db.get(key.as_bytes()).unwrap(),
            Some(b"v".to_vec()),
            "{key} was accepted but lost in shutdown"
        );
    }
    // The client can still read its acknowledgements off the closed socket.
    let mut oks = 0;
    while let Ok(reply) = conn.read_reply() {
        if reply == RespValue::ok() {
            oks += 1;
        }
    }
    assert_eq!(oks, PIPELINED);
}

#[test]
fn killed_server_recovers_every_acknowledged_write_on_restart() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/server-crash");
    let db: Arc<dyn Db> = Arc::new(PebblesDb::open(Arc::clone(&env), dir).unwrap());
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Writers record which writes were acknowledged; the kill severs their
    // sockets mid-stream.
    let writers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let mut acked = BTreeSet::new();
                let Ok(mut conn) = RespClient::connect(addr) else {
                    return acked;
                };
                for i in 0..10_000u32 {
                    let key = format!("w{w}k{i:06}");
                    match conn.command(&[b"SET", key.as_bytes(), b"v"]) {
                        Ok(RespValue::Simple(_)) => {
                            acked.insert(key);
                        }
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(300));
    server.kill();
    let mut acked = BTreeSet::new();
    for writer in writers {
        acked.extend(writer.join().unwrap());
    }
    assert!(!acked.is_empty(), "the kill must land mid-workload");

    // Restart the store from the same (in-memory) disk image.
    drop(db);
    let reopened = PebblesDb::open(env, dir).unwrap();
    for key in &acked {
        assert_eq!(
            reopened.get(key.as_bytes()).unwrap(),
            Some(b"v".to_vec()),
            "acknowledged write {key} lost across kill + restart"
        );
    }
}

#[test]
fn info_and_prometheus_metrics_render_over_the_wire() {
    let mut config = ServerConfig::default();
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    let (server, _db) = start_server(config);

    let mut conn = RespClient::connect(server.local_addr()).unwrap();
    ok(conn.command(&[b"SET", b"k", b"v"]).unwrap());
    let RespValue::Bulk(info) = conn.command(&[b"INFO"]).unwrap() else {
        panic!("INFO must return bulk")
    };
    let info = String::from_utf8(info).unwrap();
    assert!(info.contains("# server"));
    assert!(info.contains("# store"));
    assert!(info.contains("# cf:default"));

    // The Prometheus side listener answers a plain HTTP GET.
    let metrics_addr = server.metrics_addr().expect("metrics listener configured");
    let mut http = std::net::TcpStream::connect(metrics_addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    http.read_to_end(&mut response).unwrap();
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.0 200 OK"));
    assert!(response.contains("pebblesdb_server_commands"));
    assert!(response.contains("pebblesdb_store_user_bytes_written"));
    assert!(response.contains("pebblesdb_cf_num_files{cf=\"default\"}"));
    server.shutdown();
}

#[test]
fn shutdown_drain_on_a_dead_connection_is_counted_not_hidden() {
    // Slow the store's appends so the connection thread is still answering
    // the first burst when the client dies and the shutdown lands: the
    // second burst is then answered by the shutdown drain itself, against a
    // connection that is already gone.
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let db: Arc<dyn Db> =
        Arc::new(PebblesDb::open(Arc::clone(&env), Path::new("/server-drain")).unwrap());
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let counters = server.counters();

    const BURST: u32 = 40;
    let mut conn = RespClient::connect(server.local_addr()).unwrap();
    mem_env.set_write_latency_micros(20_000);
    for i in 0..BURST {
        conn.send(&[b"SET", format!("a{i:03}").as_bytes(), b"v"])
            .unwrap();
    }
    // Let the thread pull burst A off the socket, then queue burst B behind
    // it and vanish without reading a single reply.
    std::thread::sleep(Duration::from_millis(200));
    for i in 0..BURST {
        conn.send(&[b"SET", format!("b{i:03}").as_bytes(), b"v"])
            .unwrap();
    }
    drop(conn);

    // Shutdown flags the connection thread mid-burst-A; once it finishes,
    // it enters the drain with burst B still buffered and the peer dead.
    server.shutdown();
    mem_env.set_write_latency_micros(0);

    // Burst A was accepted before the drain and must have been applied.
    for i in 0..BURST {
        let key = format!("a{i:03}");
        assert_eq!(
            db.get(key.as_bytes()).unwrap(),
            Some(b"v".to_vec()),
            "{key} was accepted but lost in shutdown"
        );
    }
    // The drain could not deliver its replies (or farewell) to the dead
    // socket; before the fix this was silently discarded.
    assert!(
        counters
            .shutdown_drain_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "failed drain was not surfaced in the counters"
    );
}
