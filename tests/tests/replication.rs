//! End-to-end replication tests: the CDC change stream at the engine level
//! (live tailing, WAL-segment replay, truncation and pinning contracts),
//! the `SYNC` wire protocol, and full leader–follower topologies — a
//! [`FollowerDb`] converging to byte-equality with its leader, resuming
//! across a leader kill + restart and across its own restart, serving
//! snapshot-consistent reads at its applied frontier while the leader keeps
//! writing, and a model-based differential workload over mixed
//! column-family batches.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pebblesdb::{FlsmPolicy, PebblesDb};
use pebblesdb_common::replication::{ChangeEvent, ChangeStream};
use pebblesdb_common::{
    CfId, Db, KvStore, ReadOptions, ReplicationFrame, StoreOptions, ValueType, WriteBatch,
};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_replica::{FollowerConfig, FollowerDb};
use pebblesdb_server::{RespClient, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WAIT: Duration = Duration::from_secs(60);

fn open_leader(env: &Arc<MemEnv>, path: &str) -> Arc<dyn Db> {
    let env: Arc<dyn Env> = Arc::clone(env) as Arc<dyn Env>;
    Arc::new(PebblesDb::open(env, Path::new(path)).unwrap())
}

fn open_follower(leader_addr: std::net::SocketAddr) -> (FollowerDb<FlsmPolicy>, Arc<MemEnv>) {
    let env = Arc::new(MemEnv::new());
    (reopen_follower(&env, leader_addr), env)
}

fn reopen_follower(env: &Arc<MemEnv>, leader_addr: std::net::SocketAddr) -> FollowerDb<FlsmPolicy> {
    FollowerDb::open_with(
        FlsmPolicy::new,
        Arc::clone(env) as Arc<dyn Env>,
        Path::new("/follower"),
        StoreOptions::default(),
        FollowerConfig {
            leader_addr: leader_addr.to_string(),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Blocks until the follower's applied frontier reaches the leader's
/// committed frontier (sampled after the leader quiesces).
fn wait_caught_up(follower: &FollowerDb<FlsmPolicy>, leader: &dyn Db) {
    let deadline = Instant::now() + WAIT;
    loop {
        let target = leader.committed_sequence();
        if follower.applied_sequence() >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at {} < {} (connected={}, truncated={}, last_error={:?})",
            follower.applied_sequence(),
            target,
            follower.is_connected(),
            follower.truncated(),
            follower.last_error(),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Full contents of one column family as a map.
fn dump_cf(db: &dyn Db, name: &str) -> BTreeMap<Vec<u8>, Vec<u8>> {
    db.cf(name)
        .unwrap_or_else(|| panic!("column family {name:?} missing"))
        .scan(b"", &[], usize::MAX)
        .unwrap()
        .into_iter()
        .collect()
}

/// Drains `stream` until its cursor passes `target_seq`.
fn drain(stream: &mut dyn ChangeStream, target_seq: u64) -> Vec<ChangeEvent> {
    let mut out = Vec::new();
    let deadline = Instant::now() + WAIT;
    while stream.cursor() <= target_seq {
        match stream.next_event(Duration::from_millis(100)).unwrap() {
            Some(event) => out.push(event),
            None => assert!(
                Instant::now() < deadline,
                "stream stalled at cursor {}",
                stream.cursor()
            ),
        }
    }
    out
}

/// Applies delivered events to a model map keyed by `(cf, key)`.
fn apply_events(events: &[ChangeEvent], model: &mut BTreeMap<(CfId, Vec<u8>), Vec<u8>>) {
    for event in events {
        for record in event.batch.iter() {
            let record = record.unwrap();
            match record.value_type {
                ValueType::Value => {
                    model.insert((record.cf, record.key.to_vec()), record.value.to_vec());
                }
                ValueType::Deletion => {
                    model.remove(&(record.cf, record.key.to_vec()));
                }
                ValueType::ValuePointer => panic!("streams must resolve pointers inline"),
            }
        }
    }
}

#[test]
fn change_stream_tails_live_commits_and_replays_closed_segments() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = PebblesDb::open(env, Path::new("/cdc")).unwrap();

    for i in 0..20u32 {
        db.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    let mut stream = db.stream(1).unwrap();
    let mut model = BTreeMap::new();
    apply_events(&drain(stream.as_mut(), db.committed_sequence()), &mut model);
    assert_eq!(model.len(), 20);

    // Live tailing: a commit after the stream reached the frontier arrives.
    db.put(b"live", b"yes").unwrap();
    let event = stream
        .next_event(Duration::from_secs(5))
        .unwrap()
        .expect("live commit must be delivered");
    apply_events(&[event], &mut model);
    assert_eq!(model.get(&(0, b"live".to_vec())).unwrap(), b"yes");

    // Close the current segment (flush rotates the WAL), write more, then a
    // fresh cursor from 1 must replay the closed segment and splice into the
    // tail transparently.
    KvStore::flush(&db).unwrap();
    for i in 20..40u32 {
        db.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    let mut replayed = db.stream(1).unwrap();
    let mut replay_model = BTreeMap::new();
    apply_events(
        &drain(replayed.as_mut(), db.committed_sequence()),
        &mut replay_model,
    );
    assert_eq!(replay_model.len(), 41, "all 40 keys + the live one");

    // Events arrive in commit order: last_seq strictly increasing.
    let events = {
        let mut s = db.stream(1).unwrap();
        drain(s.as_mut(), db.committed_sequence())
    };
    assert!(events.windows(2).all(|w| w[0].last_seq < w[1].last_seq));
}

#[test]
fn wal_reclamation_honors_stream_floors_and_retention_cap() {
    // retain = 0 (default): an idle cursor pins its WAL history through any
    // amount of flushing; a fresh cursor from 1 still replays everything.
    let mut options = StoreOptions::default();
    options.write_buffer_size = 32 << 10;
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = PebblesDb::open_with_options(env, Path::new("/pin"), options.clone()).unwrap();
    let pinned = db.stream(1).unwrap();
    for round in 0..5u32 {
        for i in 0..200u32 {
            db.put(
                format!("r{round}k{i:04}").as_bytes(),
                vec![b'x'; 64].as_slice(),
            )
            .unwrap();
        }
        KvStore::flush(&db).unwrap();
    }
    let mut fresh = db.stream(1).expect("idle cursor must pin WAL history");
    let mut model = BTreeMap::new();
    apply_events(&drain(fresh.as_mut(), db.committed_sequence()), &mut model);
    assert_eq!(model.len(), 1000);
    drop(pinned);

    // retain = 1: only the newest closed segment outlives the family
    // floors, and a cursor lagging behind the window is truncated instead
    // of pinning the log forever.
    let mut capped = StoreOptions::default();
    capped.write_buffer_size = 32 << 10;
    capped.cdc_wal_retain_segments = 1;
    capped.cdc_tail_bytes = 4 << 10;
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let db = PebblesdbOpen::open(env, "/capped", capped);
    let mut lagging = db.stream(1).unwrap();
    for round in 0..8u32 {
        for i in 0..200u32 {
            db.put(
                format!("r{round}k{i:04}").as_bytes(),
                vec![b'y'; 64].as_slice(),
            )
            .unwrap();
        }
        KvStore::flush(&db).unwrap();
    }
    // The lagging cursor's history is gone: both the held stream and a new
    // one report truncation as an explicit error, never a silent gap.
    let held = lagging.next_event(Duration::from_millis(100));
    match held {
        Err(err) => assert!(err.is_sequence_truncated(), "unexpected error: {err}"),
        Ok(event) => panic!("lagging cursor must be truncated, got {event:?}"),
    }
    match db.stream(1) {
        Err(err) => assert!(err.is_sequence_truncated(), "unexpected error: {err}"),
        Ok(_) => panic!("reclaimed history must not reopen"),
    }
}

/// Tiny indirection so both truncation sub-cases read the same.
struct PebblesdbOpen;
impl PebblesdbOpen {
    fn open(env: Arc<dyn Env>, path: &str, options: StoreOptions) -> PebblesDb {
        PebblesDb::open_with_options(env, Path::new(path), options).unwrap()
    }
}

#[test]
fn sync_verb_ships_catalog_batches_and_pings_over_the_wire() {
    let env = Arc::new(MemEnv::new());
    let db = open_leader(&env, "/wire");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();

    let users = db.create_cf("users").unwrap();
    db.put(b"a", b"1").unwrap();
    users.put(b"b", b"2").unwrap();

    let mut client = RespClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();

    // Malformed cursors are error replies, not closed connections.
    let reply = client.command(&[b"SYNC", b"not-a-number"]).unwrap();
    assert!(matches!(reply, pebblesdb_common::RespValue::Error(_)));

    client.command_ok(&[b"SYNC", b"1"]).unwrap();
    let first = ReplicationFrame::parse(client.read_reply().unwrap()).unwrap();
    let ReplicationFrame::Catalog(cfs) = first else {
        panic!("stream must open with the catalog, got {first:?}");
    };
    assert!(cfs.contains(&(0, "default".to_string())));
    assert!(cfs.iter().any(|(id, name)| *id != 0 && name == "users"));

    // Both committed batches arrive in order, then idle pings carry the
    // leader's frontier.
    let mut last_seq = 0;
    let mut batches = 0;
    let deadline = Instant::now() + WAIT;
    while batches < 2 {
        assert!(Instant::now() < deadline, "batches never arrived");
        match ReplicationFrame::parse(client.read_reply().unwrap()).unwrap() {
            ReplicationFrame::Batch {
                last_seq: seq,
                contents,
                ..
            } => {
                assert!(seq > last_seq, "batches must arrive in commit order");
                last_seq = seq;
                batches += 1;
                assert!(WriteBatch::from_contents(contents).unwrap().count() > 0);
            }
            ReplicationFrame::Ping { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let deadline = Instant::now() + WAIT;
    loop {
        assert!(Instant::now() < deadline, "no ping while idle");
        if let ReplicationFrame::Ping { last_seq: seq, .. } =
            ReplicationFrame::parse(client.read_reply().unwrap()).unwrap()
        {
            assert_eq!(seq, db.committed_sequence());
            break;
        }
    }
    server.shutdown();
}

#[test]
fn follower_converges_serves_snapshot_reads_and_rejects_writes() {
    let env = Arc::new(MemEnv::new());
    let db = open_leader(&env, "/leader");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let mirror = db.create_cf("mirror").unwrap();

    let (follower, _fenv) = open_follower(server.local_addr());

    // Writer commits paired cross-family batches while the follower reads.
    const PAIRS: u32 = 400;
    let writer = {
        let db = Arc::clone(&db);
        let mirror_id = mirror.id();
        std::thread::spawn(move || {
            for i in 0..PAIRS {
                let key = format!("pair{i:04}").into_bytes();
                let mut batch = WriteBatch::new();
                batch.put_cf(0, &key, b"x");
                batch.put_cf(mirror_id, &key, b"x");
                db.write(batch).unwrap();
            }
        })
    };

    // Snapshot-consistent reads at the applied frontier: within one pinned
    // sequence, a pair key is either fully present or fully absent.
    let mut checked = 0u32;
    while checked < 50 {
        let Some(follower_mirror) = follower.cf("mirror") else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let snap = follower.snapshot();
        let opts = ReadOptions {
            snapshot: Some(snap.sequence()),
            ..Default::default()
        };
        let probe = format!("pair{:04}", checked * 7 % PAIRS).into_bytes();
        let default_half = follower.get_opts(&opts, &probe).unwrap();
        let mirror_half = follower_mirror.get_opts(&opts, &probe).unwrap();
        assert_eq!(
            default_half.is_some(),
            mirror_half.is_some(),
            "snapshot at seq {} observed half a batch",
            snap.sequence()
        );
        checked += 1;
    }

    writer.join().unwrap();
    wait_caught_up(&follower, db.as_ref());

    // Byte equality across every family at the common sequence.
    assert_eq!(follower.applied_sequence(), db.committed_sequence());
    assert_eq!(
        dump_cf(db.as_ref(), "default"),
        dump_cf(&follower, "default")
    );
    assert_eq!(dump_cf(db.as_ref(), "mirror"), dump_cf(&follower, "mirror"));
    assert_eq!(dump_cf(&follower, "mirror").len(), PAIRS as usize);

    // The replica is read-only on every surface.
    for err in [
        follower.put(b"nope", b"x").unwrap_err(),
        follower.delete(b"nope").unwrap_err(),
        follower.write(WriteBatch::new()).unwrap_err(),
        follower.create_cf("nope").unwrap_err(),
        follower.drop_cf("mirror").unwrap_err(),
        follower
            .cf("mirror")
            .unwrap()
            .put(b"nope", b"x")
            .unwrap_err(),
    ] {
        assert!(err.to_string().contains("read-only"), "got: {err}");
    }

    // Replication stats surface through the shared field list.
    let stats = follower.stats();
    assert_eq!(stats.replica_applied_seq, follower.applied_sequence());
    assert!(db.stats().cdc_streams_active >= 1);
    assert!(db.stats().wal_bytes_shipped > 0);

    server.shutdown();
}

#[test]
fn follower_catches_up_across_leader_kill_and_restart() {
    let env = Arc::new(MemEnv::new());
    let db = open_leader(&env, "/restart-leader");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let port = server.local_addr().port();

    let (follower, _fenv) = open_follower(server.local_addr());

    const FIRST: u32 = 300;
    const SECOND: u32 = 300;
    for i in 0..FIRST {
        db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    // Catch the follower up before the crash so its resume cursor sits in
    // history the restarted leader still retains (an offline follower's
    // window is the explicit retention cap, not the cursor pin).
    wait_caught_up(&follower, db.as_ref());

    // Kill the server abruptly (sockets severed mid-stream) and drop the
    // store, then restart both on the same port from the surviving files.
    server.kill();
    drop(db);
    let db = open_leader(&env, "/restart-leader");
    let config = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        ..Default::default()
    };
    let server = Server::start(Arc::clone(&db), config).unwrap();
    for i in FIRST..FIRST + SECOND {
        db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }

    wait_caught_up(&follower, db.as_ref());
    assert!(!follower.truncated(), "{:?}", follower.last_error());
    let contents = dump_cf(&follower, "default");
    assert_eq!(contents.len(), (FIRST + SECOND) as usize);
    assert_eq!(contents, dump_cf(db.as_ref(), "default"));
    // Exactly-once apply: every distinct batch applied once — re-deliveries
    // after the torn stream are skipped, none are lost.
    assert_eq!(follower.batches_applied(), u64::from(FIRST + SECOND));

    server.shutdown();
}

#[test]
fn follower_restart_resumes_from_its_durable_applied_sequence() {
    let env = Arc::new(MemEnv::new());
    let db = open_leader(&env, "/resume-leader");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();

    let (follower, fenv) = open_follower(server.local_addr());
    const FIRST: u32 = 250;
    const SECOND: u32 = 250;
    for i in 0..FIRST {
        db.put(format!("k{i:05}").as_bytes(), b"v").unwrap();
    }
    wait_caught_up(&follower, db.as_ref());
    let applied_before = follower.applied_sequence();
    follower.shutdown();

    // The leader keeps writing while the follower is down.
    for i in FIRST..FIRST + SECOND {
        db.put(format!("k{i:05}").as_bytes(), b"v").unwrap();
    }

    // Reopen from the same files: recovery restores the applied sequence,
    // the thread resumes from there and applies only what it missed.
    let follower = reopen_follower(&fenv, server.local_addr());
    assert!(follower.applied_sequence() >= applied_before);
    wait_caught_up(&follower, db.as_ref());
    assert_eq!(
        dump_cf(&follower, "default").len(),
        (FIRST + SECOND) as usize
    );
    assert_eq!(
        dump_cf(&follower, "default"),
        dump_cf(db.as_ref(), "default")
    );
    assert_eq!(
        follower.batches_applied(),
        u64::from(SECOND),
        "a restarted follower must apply exactly the batches it missed"
    );

    server.shutdown();
}

#[test]
fn differential_random_workload_replica_matches_leader_and_model() {
    let env = Arc::new(MemEnv::new());
    let db = open_leader(&env, "/diff-leader");
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let aux = db.create_cf("aux").unwrap();
    let aux_id = aux.id();
    let (follower, _fenv) = open_follower(server.local_addr());

    let mut model: BTreeMap<(CfId, Vec<u8>), Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x5eed_5eed);
    for op in 0..1500u32 {
        let cf = if rng.gen_range(0..2) == 0 { 0 } else { aux_id };
        let key = format!("key{:03}", rng.gen_range(0..250u32)).into_bytes();
        match rng.gen_range(0..4u32) {
            0..=1 => {
                let value = format!("val{op}").into_bytes();
                let mut batch = WriteBatch::new();
                batch.put_cf(cf, &key, &value);
                db.write(batch).unwrap();
                model.insert((cf, key), value);
            }
            2 => {
                let mut batch = WriteBatch::new();
                batch.delete_cf(cf, &key);
                db.write(batch).unwrap();
                model.remove(&(cf, key));
            }
            _ => {
                // A mixed cross-family batch: same key written to both
                // families atomically.
                let value = format!("pair{op}").into_bytes();
                let mut batch = WriteBatch::new();
                batch.put_cf(0, &key, &value);
                batch.put_cf(aux_id, &key, &value);
                db.write(batch).unwrap();
                model.insert((0, key.clone()), value.clone());
                model.insert((aux_id, key), value);
            }
        }
    }

    wait_caught_up(&follower, db.as_ref());
    assert_eq!(follower.applied_sequence(), db.committed_sequence());

    for (cf_name, cf_id) in [("default", 0), ("aux", aux_id)] {
        let expected: BTreeMap<Vec<u8>, Vec<u8>> = model
            .iter()
            .filter(|((cf, _), _)| *cf == cf_id)
            .map(|((_, k), v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(dump_cf(db.as_ref(), cf_name), expected, "leader vs model");
        assert_eq!(dump_cf(&follower, cf_name), expected, "replica vs model");
    }

    server.shutdown();
}
