//! Block/vlog compression integration tests, run against both engines:
//! format compatibility across compression-off and compression-on reopens
//! (per-block tags make mixed-format databases normal, not a migration),
//! on-disk shrinkage for compressible data, per-level compression tiers,
//! and a bit-flip corruption sweep — a flipped bit anywhere in a compressed
//! data/index block or compressed vlog record must surface as an error or a
//! clean miss, never a panic and never a wrong value.

use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{CompressionType, Db, KvStore, ReadOptions, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

const ENGINES: [&str; 2] = ["flsm", "lsm"];

fn open_engine(engine: &str, env: &Arc<dyn Env>, dir: &Path, options: StoreOptions) -> Arc<dyn Db> {
    if engine == "flsm" {
        Arc::new(PebblesDb::open_with_options(Arc::clone(env), dir, options).unwrap())
    } else {
        Arc::new(
            LsmDb::open_with_options(Arc::clone(env), dir, options, StorePreset::HyperLevelDb)
                .unwrap(),
        )
    }
}

fn small_file_options(compression: CompressionType) -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 64 << 10;
    opts.max_file_size = 32 << 10;
    opts.level0_compaction_trigger = 2;
    opts.compression = compression;
    opts
}

/// A deterministic, highly compressible value derived from its key index.
fn compressible_value(i: u32, len: usize) -> Vec<u8> {
    let fragment = format!("fragment-{:06}-", i % 7);
    fragment
        .as_bytes()
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect()
}

fn table_files(env: &dyn Env, dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = env
        .children(dir)
        .unwrap()
        .into_iter()
        .filter(|name| name.ends_with(".sst"))
        .collect();
    names.sort();
    names
}

fn total_sst_bytes(env: &dyn Env, dir: &Path) -> u64 {
    table_files(env, dir)
        .iter()
        .map(|name| env.file_size(&dir.join(name)).unwrap())
        .sum()
}

#[test]
fn mixed_format_databases_survive_compression_toggles() {
    for engine in ENGINES {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let dir = Path::new("/compression-toggle");

        // Phase 1: compression off — every block is written with tag 0,
        // exactly the pre-compression format.
        let db = open_engine(engine, &env, dir, small_file_options(CompressionType::None));
        for i in 0..400u32 {
            db.put(format!("a{i:05}").as_bytes(), &compressible_value(i, 512))
                .unwrap();
        }
        db.flush().unwrap();
        drop(db);

        // Phase 2: reopen with compression on; the old tag-0 tables must
        // stay readable and new writes land compressed next to them.
        let db = open_engine(engine, &env, dir, small_file_options(CompressionType::Lz));
        for i in 0..400u32 {
            assert_eq!(
                db.get(format!("a{i:05}").as_bytes()).unwrap().as_deref(),
                Some(compressible_value(i, 512).as_slice()),
                "{engine}: tag-0 data unreadable after enabling compression"
            );
        }
        for i in 0..400u32 {
            db.put(format!("b{i:05}").as_bytes(), &compressible_value(i, 512))
                .unwrap();
        }
        db.flush().unwrap();
        drop(db);

        // Phase 3: reopen with compression off again; compressed blocks are
        // still decoded (the reader keys off the stored tag, not the
        // option), and compaction may rewrite them raw — both formats
        // coexist in one tree either way.
        let db = open_engine(engine, &env, dir, small_file_options(CompressionType::None));
        for i in 0..400u32 {
            for prefix in ["a", "b"] {
                assert_eq!(
                    db.get(format!("{prefix}{i:05}").as_bytes())
                        .unwrap()
                        .as_deref(),
                    Some(compressible_value(i, 512).as_slice()),
                    "{engine}: {prefix}-keys unreadable after disabling compression"
                );
            }
        }
        // Differential: a full scan over the mixed-format tree matches the
        // expected map exactly.
        let mut iter = db.iter(&ReadOptions::default()).unwrap();
        iter.seek_to_first();
        let mut count = 0;
        while iter.valid() {
            count += 1;
            iter.next();
        }
        iter.status().unwrap();
        assert_eq!(count, 800, "{engine}: mixed-format scan lost keys");
    }
}

#[test]
fn compression_shrinks_tables_and_moves_the_counters() {
    for engine in ENGINES {
        let mut sizes = Vec::new();
        for compression in [CompressionType::None, CompressionType::Lz] {
            let env: Arc<dyn Env> = Arc::new(MemEnv::new());
            let dir = Path::new("/compression-size");
            let db = open_engine(engine, &env, dir, small_file_options(compression));
            for i in 0..500u32 {
                db.put(format!("k{i:05}").as_bytes(), &compressible_value(i, 1024))
                    .unwrap();
            }
            db.flush().unwrap();
            let stats = db.stats();
            if compression == CompressionType::Lz {
                assert!(
                    stats.compress_input_bytes > 0,
                    "{engine}: compress_input_bytes never moved"
                );
                assert!(
                    stats.compress_output_bytes < stats.compress_input_bytes,
                    "{engine}: codec did not shrink compressible blocks"
                );
            } else {
                assert_eq!(stats.compress_input_bytes, 0);
            }
            sizes.push(total_sst_bytes(env.as_ref(), dir));
            drop(db);
        }
        assert!(
            sizes[1] * 2 < sizes[0],
            "{engine}: compressed tables ({}) not < half of raw ({})",
            sizes[1],
            sizes[0]
        );
    }
}

#[test]
fn per_level_tiers_keep_young_levels_raw() {
    for engine in ENGINES {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let dir = Path::new("/compression-tiers");
        let mut opts = small_file_options(CompressionType::Lz);
        // Level 0 raw, level 1 and deeper compressed (the RocksDB-style
        // tiering: young tables are short-lived, deep tables are cold).
        opts.compression_per_level = vec![CompressionType::None, CompressionType::Lz];
        let db = open_engine(engine, &env, dir, opts);
        for i in 0..2000u32 {
            db.put(format!("k{i:05}").as_bytes(), &compressible_value(i, 512))
                .unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert!(
            stats.compress_input_bytes > 0,
            "{engine}: compaction outputs past level 0 should have compressed"
        );
        for i in (0..2000u32).step_by(37) {
            assert_eq!(
                db.get(format!("k{i:05}").as_bytes()).unwrap().as_deref(),
                Some(compressible_value(i, 512).as_slice()),
                "{engine}: tiered tree lost a key"
            );
        }
    }
}

/// Every sampled single-bit flip in a compressed table file must read as an
/// error, a clean miss, or the correct value — never a panic, never garbage.
#[test]
fn bit_flips_in_compressed_tables_never_return_garbage() {
    for engine in ENGINES {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let dir = Path::new("/compression-bitflip");
        let db = open_engine(engine, &env, dir, small_file_options(CompressionType::Lz));
        for i in 0..600u32 {
            db.put(format!("k{i:05}").as_bytes(), &compressible_value(i, 512))
                .unwrap();
        }
        db.flush().unwrap();
        drop(db);

        let read_opts = ReadOptions {
            verify_checksums: true,
            ..Default::default()
        };
        let files = table_files(env.as_ref(), dir);
        assert!(!files.is_empty(), "{engine}: no sstables on disk");
        for name in files.iter().take(2) {
            let path = dir.join(name);
            let pristine = env.read_file_to_vec(&path).unwrap();
            // A prime stride spreads flips across data blocks, the index
            // block, and both trailers without reopening thousands of times.
            let stride = (pristine.len() / 24).max(1) | 1;
            for pos in (0..pristine.len()).step_by(stride) {
                let mut tampered = pristine.clone();
                tampered[pos] ^= 1 << (pos % 8);
                let mut f = env.new_writable_file(&path).unwrap();
                f.append(&tampered).unwrap();
                f.close().unwrap();

                // Reopen so no cache hides the corruption. Failing to open
                // is itself a clean detection.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let db =
                        open_engine(engine, &env, dir, small_file_options(CompressionType::Lz));
                    for i in (0..600u32).step_by(101) {
                        let key = format!("k{i:05}");
                        match db.get_opts(&read_opts, key.as_bytes()) {
                            Err(_) | Ok(None) => {}
                            Ok(Some(value)) => assert_eq!(
                                value,
                                compressible_value(i, 512),
                                "{engine}: flip at {pos} in {name} returned a wrong value"
                            ),
                        }
                    }
                }));
                assert!(
                    result.is_ok(),
                    "{engine}: flip at byte {pos} of {name} panicked"
                );
            }
            // Restore the pristine file for the next round.
            let mut f = env.new_writable_file(&path).unwrap();
            f.append(&pristine).unwrap();
            f.close().unwrap();
        }
    }
}

/// Bit flips inside compressed vlog records fail the record CRC (or the
/// codec's own framing checks) — resolution errors out, never fabricates.
#[test]
fn bit_flips_in_compressed_vlog_records_surface_as_corruption() {
    for engine in ENGINES {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let dir = Path::new("/compression-vlog-flip");
        let mut opts = small_file_options(CompressionType::Lz);
        opts.value_separation_threshold = 256;
        let db = open_engine(engine, &env, dir, opts.clone());
        for i in 0..50u32 {
            db.put(format!("k{i:04}").as_bytes(), &compressible_value(i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
        // The separated-and-compressed path must have fired.
        assert!(
            db.stats().vlog_bytes_written > 0,
            "{engine}: no vlog writes"
        );
        assert!(
            db.stats().compress_input_bytes > 0,
            "{engine}: vlog values never hit the codec"
        );
        drop(db);

        let vlogs: Vec<String> = env
            .children(dir)
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".vlog"))
            .collect();
        assert!(!vlogs.is_empty(), "{engine}: no vlog files on disk");
        let path = dir.join(&vlogs[0]);
        let pristine = env.read_file_to_vec(&path).unwrap();
        let stride = (pristine.len() / 32).max(1) | 1;
        let mut detected = 0u32;
        for pos in (0..pristine.len()).step_by(stride) {
            let mut tampered = pristine.clone();
            tampered[pos] ^= 1 << (pos % 8);
            let mut f = env.new_writable_file(&path).unwrap();
            f.append(&tampered).unwrap();
            f.close().unwrap();

            let db = open_engine(engine, &env, dir, opts.clone());
            for i in (0..50u32).step_by(7) {
                let key = format!("k{i:04}");
                match db.get(key.as_bytes()) {
                    Err(_) => detected += 1,
                    Ok(None) => {}
                    Ok(Some(value)) => assert_eq!(
                        value,
                        compressible_value(i, 2048),
                        "{engine}: vlog flip at {pos} returned a wrong value"
                    ),
                }
            }
            drop(db);
        }
        assert!(
            detected > 0,
            "{engine}: no vlog bit flip was ever detected as corruption"
        );
        let mut f = env.new_writable_file(&path).unwrap();
        f.append(&pristine).unwrap();
        f.close().unwrap();
    }
}

/// Large separated values roundtrip through compress-on-append and
/// decompress-on-resolve, including through a GC relocation.
#[test]
fn compressed_vlog_values_roundtrip_and_survive_gc() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/compression-vlog-gc");
    let mut opts = small_file_options(CompressionType::Lz);
    opts.value_separation_threshold = 256;
    opts.vlog_file_size = 16 << 10;
    let db = Arc::new(PebblesDb::open_with_options(Arc::clone(&env), dir, opts).unwrap());
    for i in 0..100u32 {
        db.put(format!("k{i:04}").as_bytes(), &compressible_value(i, 2048))
            .unwrap();
    }
    // Overwrite half so GC has garbage to collect.
    for i in (0..100u32).step_by(2) {
        db.put(
            format!("k{i:04}").as_bytes(),
            &compressible_value(i + 1000, 2048),
        )
        .unwrap();
    }
    db.flush().unwrap();
    for _ in 0..4 {
        db.vlog_gc().unwrap();
    }
    for i in 0..100u32 {
        let expect = if i % 2 == 0 {
            compressible_value(i + 1000, 2048)
        } else {
            compressible_value(i, 2048)
        };
        assert_eq!(
            db.get(format!("k{i:04}").as_bytes()).unwrap().as_deref(),
            Some(expect.as_slice()),
            "key k{i:04} wrong after compressed GC relocation"
        );
    }
}
