//! Crash-recovery integration tests: both LSM-family engines must recover
//! all acknowledged data (modulo a torn WAL tail) after a simulated crash at
//! arbitrary points — including the window where a flush or compaction has
//! fully written its output sstables but its MANIFEST commit never happened.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, ReadOptions, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

/// Number of `.sst` files physically present in the database directory.
fn tables_on_disk(env: &dyn Env, dir: &Path) -> usize {
    env.children(dir)
        .unwrap()
        .iter()
        .filter(|name| name.ends_with(".sst"))
        .count()
}

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 32 << 10;
    opts.max_file_size = 16 << 10;
    opts.base_level_bytes = 64 << 10;
    opts.level0_compaction_trigger = 2;
    opts.top_level_bits = 8;
    opts.bit_decrement = 1;
    opts
}

fn live_wal(env: &dyn Env, dir: &Path) -> std::path::PathBuf {
    let name = env
        .children(dir)
        .unwrap()
        .into_iter()
        .filter(|name| name.ends_with(".log"))
        .max()
        .expect("a live WAL exists");
    dir.join(name)
}

#[test]
fn pebblesdb_recovers_after_torn_wal_at_many_points() {
    // Repeat the crash at several truncation points to cover record
    // boundaries, mid-record cuts and whole-block losses.
    for truncate_by in [1usize, 8, 64, 1000, 5000] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash");
        let written = 3000u32;
        {
            let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
            for i in 0..written {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            let wal = live_wal(env.as_ref(), dir);
            let size = env.file_size(&wal).unwrap() as usize;
            mem_env
                .truncate_file(&wal, size.saturating_sub(truncate_by))
                .unwrap();
        }
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        let mut recovered = 0u32;
        for i in 0..written {
            if db.get(format!("key{i:06}").as_bytes()).unwrap().is_some() {
                recovered += 1;
            }
        }
        // Everything outside the torn tail must be present; the tail can lose
        // at most the records covered by the truncated bytes.
        assert!(
            recovered >= written - 200,
            "truncate_by {truncate_by}: only {recovered}/{written} recovered"
        );
        // Prefix property: if key i is missing, no later key may be present
        // (writes were sequential, so durability must be prefix-closed).
        let mut missing_seen = false;
        for i in 0..written {
            let present = db.get(format!("key{i:06}").as_bytes()).unwrap().is_some();
            if missing_seen {
                assert!(!present, "key {i} present after an earlier key was lost");
            }
            if !present {
                missing_seen = true;
            }
        }
        env.remove_dir_all(dir).unwrap();
    }
}

#[test]
fn baseline_lsm_recovers_after_torn_wal() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/crash-lsm");
    let written = 3000u32;
    {
        let db = LsmDb::open_with_options(
            Arc::clone(&env),
            dir,
            small_options(),
            StorePreset::HyperLevelDb,
        )
        .unwrap();
        for i in 0..written {
            db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let wal = live_wal(env.as_ref(), dir);
        let size = env.file_size(&wal).unwrap() as usize;
        mem_env
            .truncate_file(&wal, size.saturating_sub(20))
            .unwrap();
    }
    let db = LsmDb::open_with_options(
        Arc::clone(&env),
        dir,
        small_options(),
        StorePreset::HyperLevelDb,
    )
    .unwrap();
    let mut recovered = 0u32;
    for i in 0..written {
        if db.get(format!("key{i:06}").as_bytes()).unwrap().is_some() {
            recovered += 1;
        }
    }
    assert!(recovered >= written - 50, "{recovered}/{written}");
}

/// Kills the store after a flush wrote its level-0 sstable but before the
/// MANIFEST commit, for both engines: recovery must lose nothing (the WAL
/// still covers the unflushed keys) and the orphan sstable must be reaped.
#[test]
fn crash_between_flush_output_and_manifest_commit_loses_nothing() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-manifest");
        let open = |env: &Arc<dyn Env>| -> Arc<dyn KvStore> {
            if engine == "flsm" {
                Arc::new(
                    PebblesDb::open_with_options(Arc::clone(env), dir, small_options()).unwrap(),
                )
            } else {
                Arc::new(
                    LsmDb::open_with_options(
                        Arc::clone(env),
                        dir,
                        small_options(),
                        StorePreset::HyperLevelDb,
                    )
                    .unwrap(),
                )
            }
        };

        {
            let db = open(&env);
            for i in 0..3000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            // Another memtable's worth of acknowledged writes, still in the
            // WAL when the crash hits.
            for i in 3000..4000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            let live_before = db.stats().num_files as usize;
            // Every MANIFEST write fails from here on: the flush writes its
            // level-0 table in full, then cannot commit it.
            mem_env.inject_write_error_after("MANIFEST", 0);
            assert!(db.flush().is_err(), "{engine}: flush must surface bg_error");
            assert!(
                tables_on_disk(env.as_ref(), dir) > live_before,
                "{engine}: an orphan (uncommitted) sstable must exist on disk"
            );
        } // <- crash: the store is dropped with the orphan still present.

        mem_env.clear_fault_injection();
        let db = open(&env);
        for i in 0..4000u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{engine}: key {i} lost across the crash"
            );
        }
        db.flush().unwrap();
        assert_eq!(
            tables_on_disk(env.as_ref(), dir),
            db.stats().num_files as usize,
            "{engine}: recovery must reap every orphan sstable"
        );
    }
}

/// Kills the FLSM store after a *level* compaction wrote its output
/// fragments but before the MANIFEST commit. The compaction inputs are
/// still referenced by the old version, so recovery sees every key; the
/// orphaned outputs are reaped.
#[test]
fn flsm_crash_during_level_compaction_commit_is_recoverable() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/crash-compaction");
    // Size-triggered compaction is disabled so the level-0 files pile up
    // deterministically; the compaction is then requested via the
    // seek-compaction trigger once fault injection is armed.
    let mut opts = small_options();
    opts.level0_compaction_trigger = 100;
    opts.level0_slowdown_writes_trigger = 100;
    opts.level0_stop_writes_trigger = 120;
    opts.enable_aggressive_compaction = false;
    opts.enable_seek_compaction = true;
    opts.seek_compaction_threshold = 5;

    {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, opts.clone()).unwrap();
        for round in 0..3u32 {
            for i in (round * 500)..((round + 1) * 500) {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap(); // one committed level-0 sstable per round
        }
        let live_before = db.stats().num_files as usize;
        assert!(live_before >= 3, "setup should leave several level-0 files");

        mem_env.inject_write_error_after("MANIFEST", 0);
        // Arm the seek-triggered compaction of the overlapping level-0 files.
        for _ in 0..opts.seek_compaction_threshold {
            let mut iter = db.iter(&ReadOptions::default()).unwrap();
            iter.seek(b"key");
        }
        // The compaction writes its outputs, then fails the MANIFEST commit.
        let deadline = Instant::now() + Duration::from_secs(30);
        while db.flush().is_ok() {
            assert!(Instant::now() < deadline, "compaction never hit bg_error");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            tables_on_disk(env.as_ref(), dir) > live_before,
            "orphan compaction outputs must exist on disk"
        );
    } // <- crash.

    mem_env.clear_fault_injection();
    let db = PebblesDb::open_with_options(Arc::clone(&env), dir, opts).unwrap();
    for i in 0..1500u32 {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "key {i} lost across the compaction crash"
        );
    }
    db.flush().unwrap();
    assert_eq!(
        tables_on_disk(env.as_ref(), dir),
        db.stats().num_files as usize,
        "recovery must reap the orphaned compaction outputs"
    );
}

/// Durability of directory entries: sstables, fresh WALs and the CURRENT
/// rename are all `sync_dir`ed before anything references them, so a crash
/// that loses every *unsynced* directory entry (the metadata a real
/// filesystem may drop when the directory was never fsynced) loses no data
/// and leaves the store openable.
///
/// Before the `sync_dir` step existed, the CURRENT rename could roll back
/// to a MANIFEST that no longer matches the data files, and a flushed
/// sstable could vanish while the MANIFEST still referenced it.
#[test]
fn dropped_unsynced_dir_entries_lose_no_acknowledged_data() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-dirsync");
        let open = |env: &Arc<dyn Env>| -> Arc<dyn KvStore> {
            if engine == "flsm" {
                Arc::new(
                    PebblesDb::open_with_options(Arc::clone(env), dir, small_options()).unwrap(),
                )
            } else {
                Arc::new(
                    LsmDb::open_with_options(
                        Arc::clone(env),
                        dir,
                        small_options(),
                        StorePreset::HyperLevelDb,
                    )
                    .unwrap(),
                )
            }
        };

        {
            let db = open(&env);
            for i in 0..3000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            // A WAL-only tail of acknowledged writes.
            for i in 3000..3500u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
        } // <- power loss.

        assert!(
            mem_env.io_stats().snapshot().dir_syncs > 0,
            "{engine}: the engine never synced its directory"
        );
        // The crash drops every directory entry not covered by a sync_dir.
        mem_env.drop_unsynced_dir_entries();

        let db = open(&env);
        for i in 0..3500u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{engine}: key {i} lost to an unsynced directory entry"
            );
        }
    }
}

#[test]
fn repeated_reopen_preserves_data_and_guards() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/reopen");
    let mut expected_guards = None;
    for round in 0..4u32 {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        // Every round adds a new slice of keys and verifies all previous ones.
        for i in (round * 1000)..((round + 1) * 1000) {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("round{round}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        for check_round in 0..=round {
            let key = format!("key{:06}", check_round * 1000 + 17);
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(format!("round{check_round}").into_bytes()),
                "round {round} check {check_round}"
            );
        }
        if let Some(previous) = expected_guards {
            let current = db.guards_per_level();
            assert!(
                current
                    .iter()
                    .zip(&previous)
                    .all(|(now, before): (&usize, &usize)| now >= before),
                "guards must never be lost across reopens: {previous:?} -> {current:?}"
            );
        }
        expected_guards = Some(db.guards_per_level());
    }
}

#[test]
fn deleting_everything_then_reopening_yields_empty_reads() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/empty");
    {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        for i in 0..2000u32 {
            db.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        for i in 0..2000u32 {
            db.delete(format!("key{i:06}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
    for i in (0..2000u32).step_by(111) {
        assert_eq!(db.get(format!("key{i:06}").as_bytes()).unwrap(), None);
    }
    assert!(db.scan(b"key", &[], 10).unwrap().is_empty());
}
