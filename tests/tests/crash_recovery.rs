//! Crash-recovery integration tests: both LSM-family engines must recover
//! all acknowledged data (modulo a torn WAL tail) after a simulated crash at
//! arbitrary points — including the window where a flush or compaction has
//! fully written its output sstables but its MANIFEST commit never happened.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pebblesdb::PebblesDb;
use pebblesdb_common::{Db, KvStore, ReadOptions, StoreOptions, StorePreset, WriteBatch};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

/// Number of `.sst` files physically present in the database directory.
fn tables_on_disk(env: &dyn Env, dir: &Path) -> usize {
    env.children(dir)
        .unwrap()
        .iter()
        .filter(|name| name.ends_with(".sst"))
        .count()
}

fn small_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 32 << 10;
    opts.max_file_size = 16 << 10;
    opts.base_level_bytes = 64 << 10;
    opts.level0_compaction_trigger = 2;
    opts.top_level_bits = 8;
    opts.bit_decrement = 1;
    opts
}

fn live_wal(env: &dyn Env, dir: &Path) -> std::path::PathBuf {
    let name = env
        .children(dir)
        .unwrap()
        .into_iter()
        .filter(|name| name.ends_with(".log"))
        .max()
        .expect("a live WAL exists");
    dir.join(name)
}

#[test]
fn pebblesdb_recovers_after_torn_wal_at_many_points() {
    // Repeat the crash at several truncation points to cover record
    // boundaries, mid-record cuts and whole-block losses.
    for truncate_by in [1usize, 8, 64, 1000, 5000] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash");
        let written = 3000u32;
        {
            let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
            for i in 0..written {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            let wal = live_wal(env.as_ref(), dir);
            let size = env.file_size(&wal).unwrap() as usize;
            mem_env
                .truncate_file(&wal, size.saturating_sub(truncate_by))
                .unwrap();
        }
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        let mut recovered = 0u32;
        for i in 0..written {
            if db.get(format!("key{i:06}").as_bytes()).unwrap().is_some() {
                recovered += 1;
            }
        }
        // Everything outside the torn tail must be present; the tail can lose
        // at most the records covered by the truncated bytes.
        assert!(
            recovered >= written - 200,
            "truncate_by {truncate_by}: only {recovered}/{written} recovered"
        );
        // Prefix property: if key i is missing, no later key may be present
        // (writes were sequential, so durability must be prefix-closed).
        let mut missing_seen = false;
        for i in 0..written {
            let present = db.get(format!("key{i:06}").as_bytes()).unwrap().is_some();
            if missing_seen {
                assert!(!present, "key {i} present after an earlier key was lost");
            }
            if !present {
                missing_seen = true;
            }
        }
        env.remove_dir_all(dir).unwrap();
    }
}

#[test]
fn baseline_lsm_recovers_after_torn_wal() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/crash-lsm");
    let written = 3000u32;
    {
        let db = LsmDb::open_with_options(
            Arc::clone(&env),
            dir,
            small_options(),
            StorePreset::HyperLevelDb,
        )
        .unwrap();
        for i in 0..written {
            db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let wal = live_wal(env.as_ref(), dir);
        let size = env.file_size(&wal).unwrap() as usize;
        mem_env
            .truncate_file(&wal, size.saturating_sub(20))
            .unwrap();
    }
    let db = LsmDb::open_with_options(
        Arc::clone(&env),
        dir,
        small_options(),
        StorePreset::HyperLevelDb,
    )
    .unwrap();
    let mut recovered = 0u32;
    for i in 0..written {
        if db.get(format!("key{i:06}").as_bytes()).unwrap().is_some() {
            recovered += 1;
        }
    }
    assert!(recovered >= written - 50, "{recovered}/{written}");
}

/// Kills the store after a flush wrote its level-0 sstable but before the
/// MANIFEST commit, for both engines: recovery must lose nothing (the WAL
/// still covers the unflushed keys) and the orphan sstable must be reaped.
#[test]
fn crash_between_flush_output_and_manifest_commit_loses_nothing() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-manifest");
        let open = |env: &Arc<dyn Env>| -> Arc<dyn KvStore> {
            if engine == "flsm" {
                Arc::new(
                    PebblesDb::open_with_options(Arc::clone(env), dir, small_options()).unwrap(),
                )
            } else {
                Arc::new(
                    LsmDb::open_with_options(
                        Arc::clone(env),
                        dir,
                        small_options(),
                        StorePreset::HyperLevelDb,
                    )
                    .unwrap(),
                )
            }
        };

        {
            let db = open(&env);
            for i in 0..3000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            // Another memtable's worth of acknowledged writes, still in the
            // WAL when the crash hits.
            for i in 3000..4000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            let live_before = db.stats().num_files as usize;
            // Every MANIFEST write fails from here on: the flush writes its
            // level-0 table in full, then cannot commit it.
            mem_env.inject_write_error_after("MANIFEST", 0);
            assert!(db.flush().is_err(), "{engine}: flush must surface bg_error");
            assert!(
                tables_on_disk(env.as_ref(), dir) > live_before,
                "{engine}: an orphan (uncommitted) sstable must exist on disk"
            );
        } // <- crash: the store is dropped with the orphan still present.

        mem_env.clear_fault_injection();
        let db = open(&env);
        for i in 0..4000u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{engine}: key {i} lost across the crash"
            );
        }
        db.flush().unwrap();
        assert_eq!(
            tables_on_disk(env.as_ref(), dir),
            db.stats().num_files as usize,
            "{engine}: recovery must reap every orphan sstable"
        );
    }
}

/// Kills the FLSM store after a *level* compaction wrote its output
/// fragments but before the MANIFEST commit. The compaction inputs are
/// still referenced by the old version, so recovery sees every key; the
/// orphaned outputs are reaped.
#[test]
fn flsm_crash_during_level_compaction_commit_is_recoverable() {
    let mem_env = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(mem_env.clone());
    let dir = Path::new("/crash-compaction");
    // Size-triggered compaction is disabled so the level-0 files pile up
    // deterministically; the compaction is then requested via the
    // seek-compaction trigger once fault injection is armed.
    let mut opts = small_options();
    opts.level0_compaction_trigger = 100;
    opts.level0_slowdown_writes_trigger = 100;
    opts.level0_stop_writes_trigger = 120;
    opts.enable_aggressive_compaction = false;
    opts.enable_seek_compaction = true;
    opts.seek_compaction_threshold = 5;

    {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, opts.clone()).unwrap();
        for round in 0..3u32 {
            for i in (round * 500)..((round + 1) * 500) {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap(); // one committed level-0 sstable per round
        }
        let live_before = db.stats().num_files as usize;
        assert!(live_before >= 3, "setup should leave several level-0 files");

        mem_env.inject_write_error_after("MANIFEST", 0);
        // Arm the seek-triggered compaction of the overlapping level-0 files.
        for _ in 0..opts.seek_compaction_threshold {
            let mut iter = db.iter(&ReadOptions::default()).unwrap();
            iter.seek(b"key");
        }
        // The compaction writes its outputs, then fails the MANIFEST commit.
        let deadline = Instant::now() + Duration::from_secs(30);
        while db.flush().is_ok() {
            assert!(Instant::now() < deadline, "compaction never hit bg_error");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            tables_on_disk(env.as_ref(), dir) > live_before,
            "orphan compaction outputs must exist on disk"
        );
    } // <- crash.

    mem_env.clear_fault_injection();
    let db = PebblesDb::open_with_options(Arc::clone(&env), dir, opts).unwrap();
    for i in 0..1500u32 {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "key {i} lost across the compaction crash"
        );
    }
    db.flush().unwrap();
    assert_eq!(
        tables_on_disk(env.as_ref(), dir),
        db.stats().num_files as usize,
        "recovery must reap the orphaned compaction outputs"
    );
}

/// Durability of directory entries: sstables, fresh WALs and the CURRENT
/// rename are all `sync_dir`ed before anything references them, so a crash
/// that loses every *unsynced* directory entry (the metadata a real
/// filesystem may drop when the directory was never fsynced) loses no data
/// and leaves the store openable.
///
/// Before the `sync_dir` step existed, the CURRENT rename could roll back
/// to a MANIFEST that no longer matches the data files, and a flushed
/// sstable could vanish while the MANIFEST still referenced it.
#[test]
fn dropped_unsynced_dir_entries_lose_no_acknowledged_data() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-dirsync");
        let open = |env: &Arc<dyn Env>| -> Arc<dyn KvStore> {
            if engine == "flsm" {
                Arc::new(
                    PebblesDb::open_with_options(Arc::clone(env), dir, small_options()).unwrap(),
                )
            } else {
                Arc::new(
                    LsmDb::open_with_options(
                        Arc::clone(env),
                        dir,
                        small_options(),
                        StorePreset::HyperLevelDb,
                    )
                    .unwrap(),
                )
            }
        };

        {
            let db = open(&env);
            for i in 0..3000u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            // A WAL-only tail of acknowledged writes.
            for i in 3000..3500u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
        } // <- power loss.

        assert!(
            mem_env.io_stats().snapshot().dir_syncs > 0,
            "{engine}: the engine never synced its directory"
        );
        // The crash drops every directory entry not covered by a sync_dir.
        mem_env.drop_unsynced_dir_entries();

        let db = open(&env);
        for i in 0..3500u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{engine}: key {i} lost to an unsynced directory entry"
            );
        }
    }
}

/// Opens either LSM-family engine as a multi-namespace `Db`.
fn open_db_engine(engine: &str, env: &Arc<dyn Env>, dir: &Path) -> Arc<dyn Db> {
    if engine == "flsm" {
        Arc::new(PebblesDb::open_with_options(Arc::clone(env), dir, small_options()).unwrap())
    } else {
        Arc::new(
            LsmDb::open_with_options(
                Arc::clone(env),
                dir,
                small_options(),
                StorePreset::HyperLevelDb,
            )
            .unwrap(),
        )
    }
}

/// Column-family lifecycle, crash window 1: records written to several
/// families after a create live only in the shared WAL when the crash hits;
/// replay must route every record into its own family. A second create whose
/// catalog edit committed but whose directory initialisation crashed must
/// come back as an empty, usable family.
#[test]
fn cf_wal_replay_routes_records_into_their_families() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-cf-route");
        {
            let db = open_db_engine(engine, &env, dir);
            let users = db.create_cf("users").unwrap();
            for i in 0..500u32 {
                db.put(format!("d{i:04}").as_bytes(), b"default").unwrap();
                users.put(format!("u{i:04}").as_bytes(), b"users").unwrap();
            }
            // The create edit for "broken" commits to the catalog, then the
            // family's own MANIFEST initialisation dies — the crash window
            // between the catalog commit and the directory setup.
            mem_env.inject_write_error_after(&format!("{}/cf-", dir.display()), 0);
            assert!(db.create_cf("broken").is_err());
        } // <- crash: everything above lives in the WAL only.

        mem_env.clear_fault_injection();
        let db = open_db_engine(engine, &env, dir);
        let mut names = db.list_cfs();
        names.sort();
        assert_eq!(
            names,
            vec![
                "broken".to_string(),
                "default".to_string(),
                "users".to_string()
            ],
            "{engine}: catalog entries survive the crash"
        );
        let users = db.cf("users").unwrap();
        for i in (0..500u32).step_by(17) {
            assert_eq!(
                db.get(format!("d{i:04}").as_bytes()).unwrap(),
                Some(b"default".to_vec()),
                "{engine}: default-family record lost or misrouted"
            );
            assert_eq!(
                users.get(format!("u{i:04}").as_bytes()).unwrap(),
                Some(b"users".to_vec()),
                "{engine}: users-family record lost or misrouted"
            );
            // No bleed-through between namespaces.
            assert_eq!(db.get(format!("u{i:04}").as_bytes()).unwrap(), None);
            assert_eq!(users.get(format!("d{i:04}").as_bytes()).unwrap(), None);
        }
        // The half-created family recovered as an empty, usable namespace.
        let broken = db.cf("broken").unwrap();
        assert!(broken.scan(b"", &[], 10).unwrap().is_empty());
        broken.put(b"now", b"works").unwrap();
        assert_eq!(broken.get(b"now").unwrap(), Some(b"works".to_vec()));
    }
}

/// Column-family lifecycle, crash window 2: the drop edit committed to the
/// catalog but the crash struck before the family's directory was deleted.
/// Reopen must reap the orphaned directory (sstables included), drop the
/// family's WAL records instead of resurrecting them, and leave the
/// surviving families intact.
#[test]
fn cf_drop_commit_without_dir_removal_reaps_orphans() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/crash-cf-drop");
        let temp_id;
        {
            let db = open_db_engine(engine, &env, dir);
            let keep = db.create_cf("keep").unwrap();
            let temp = db.create_cf("temp").unwrap();
            temp_id = temp.id();
            for i in 0..2000u32 {
                keep.put(format!("k{i:05}").as_bytes(), b"keep").unwrap();
                temp.put(format!("t{i:05}").as_bytes(), b"temp").unwrap();
            }
            db.flush().unwrap(); // both families own sstables now
                                 // More WAL-only records for the doomed family.
            for i in 2000..2500u32 {
                temp.put(format!("t{i:05}").as_bytes(), b"temp").unwrap();
            }
        } // <- clean close; now fabricate the torn drop.

        let temp_dir = dir.join(format!("cf-{temp_id}"));
        assert!(
            !env.children(&temp_dir).unwrap().is_empty(),
            "{engine}: setup must leave sstables in the family directory"
        );
        // Commit the drop edit exactly as `drop_cf` does — and "crash"
        // before the directory removal that would normally follow.
        let data = pebblesdb_engine::catalog::read(env.as_ref(), dir).unwrap();
        let mut catalog =
            pebblesdb_engine::catalog::Catalog::rewrite(Arc::clone(&env), dir, &data).unwrap();
        catalog.append_drop(temp_id).unwrap();
        drop(catalog);

        let db = open_db_engine(engine, &env, dir);
        assert!(db.cf("temp").is_none(), "{engine}: dropped family is gone");
        assert!(
            env.children(&temp_dir).unwrap().is_empty(),
            "{engine}: orphaned family sstables must be reaped on reopen"
        );
        let keep = db.cf("keep").unwrap();
        for i in (0..2000u32).step_by(97) {
            assert_eq!(
                keep.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(b"keep".to_vec()),
                "{engine}: surviving family lost data"
            );
        }
        // A recreated family with the same name is a fresh id and empty —
        // the dead family's WAL records must not resurface in it.
        let recreated = db.create_cf("temp").unwrap();
        assert!(recreated.id() > temp_id, "{engine}: ids are never reused");
        assert!(recreated.scan(b"", &[], 10).unwrap().is_empty());
    }
}

/// Cross-family atomic batches: a batch spanning the default family and an
/// index family either fully survives a torn-WAL crash or fully vanishes —
/// never a row without its index entry or vice versa.
#[test]
fn cross_cf_batches_are_atomic_across_torn_wal() {
    for engine in ["flsm", "lsm"] {
        for truncate_by in [1usize, 37, 500, 4000] {
            let mem_env = MemEnv::new();
            let env: Arc<dyn Env> = Arc::new(mem_env.clone());
            let dir = Path::new("/crash-cf-atomic");
            let written = 800u32;
            {
                let db = open_db_engine(engine, &env, dir);
                let index = db.create_cf("index").unwrap();
                for i in 0..written {
                    let mut batch = WriteBatch::new();
                    batch.put(format!("row{i:05}").as_bytes(), b"payload");
                    batch.put_cf(index.id(), format!("idx{i:05}").as_bytes(), b"entry");
                    db.write(batch).unwrap();
                }
                let wal = live_wal(env.as_ref(), dir);
                let size = env.file_size(&wal).unwrap() as usize;
                mem_env
                    .truncate_file(&wal, size.saturating_sub(truncate_by))
                    .unwrap();
            } // <- crash with a torn WAL tail.

            let db = open_db_engine(engine, &env, dir);
            let index = db.cf("index").unwrap();
            let mut survivors = 0u32;
            for i in 0..written {
                let row = db.get(format!("row{i:05}").as_bytes()).unwrap().is_some();
                let idx = index
                    .get(format!("idx{i:05}").as_bytes())
                    .unwrap()
                    .is_some();
                assert_eq!(
                    row, idx,
                    "{engine}/truncate {truncate_by}: batch {i} applied to only one family"
                );
                if row {
                    survivors += 1;
                }
            }
            assert!(
                survivors >= written - 100,
                "{engine}/truncate {truncate_by}: only {survivors}/{written} batches survived"
            );
            env.remove_dir_all(dir).unwrap();
        }
    }
}

#[test]
fn repeated_reopen_preserves_data_and_guards() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/reopen");
    let mut expected_guards = None;
    for round in 0..4u32 {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        // Every round adds a new slice of keys and verifies all previous ones.
        for i in (round * 1000)..((round + 1) * 1000) {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("round{round}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        for check_round in 0..=round {
            let key = format!("key{:06}", check_round * 1000 + 17);
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(format!("round{check_round}").into_bytes()),
                "round {round} check {check_round}"
            );
        }
        if let Some(previous) = expected_guards {
            let current = db.guards_per_level();
            assert!(
                current
                    .iter()
                    .zip(&previous)
                    .all(|(now, before): (&usize, &usize)| now >= before),
                "guards must never be lost across reopens: {previous:?} -> {current:?}"
            );
        }
        expected_guards = Some(db.guards_per_level());
    }
}

#[test]
fn deleting_everything_then_reopening_yields_empty_reads() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let dir = Path::new("/empty");
    {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
        for i in 0..2000u32 {
            db.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        for i in 0..2000u32 {
            db.delete(format!("key{i:06}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    let db = PebblesDb::open_with_options(Arc::clone(&env), dir, small_options()).unwrap();
    for i in (0..2000u32).step_by(111) {
        assert_eq!(db.get(format!("key{i:06}").as_bytes()).unwrap(), None);
    }
    assert!(db.scan(b"key", &[], 10).unwrap().is_empty());
}

/// Column-family lifecycle, silent-failure window: the drop edit commits but
/// the directory removal itself fails (an undeletable directory — EBUSY, a
/// flaky device). The failure must be recorded in the store's counters, not
/// silently discarded, and the next reopen must reap the orphan.
#[test]
fn cf_drop_with_failed_dir_removal_is_recorded_and_reaped_on_reopen() {
    for engine in ["flsm", "lsm"] {
        let mem_env = MemEnv::new();
        let env: Arc<dyn Env> = Arc::new(mem_env.clone());
        let dir = Path::new("/drop-remove-fail");
        let temp_id;
        {
            let db = open_db_engine(engine, &env, dir);
            let temp = db.create_cf("temp").unwrap();
            temp_id = temp.id();
            for i in 0..500u32 {
                temp.put(format!("t{i:04}").as_bytes(), b"temp").unwrap();
            }
            db.flush().unwrap(); // the family owns sstables now
            let before = db.stats().cleanup_failures;
            mem_env.inject_remove_error(&format!("{}/cf-{temp_id}", dir.display()));

            // The drop itself succeeds — the family is gone from the catalog
            // and unreachable — but its directory could not be deleted.
            db.drop_cf("temp").unwrap();
            assert!(db.cf("temp").is_none(), "{engine}: family must be gone");
            assert!(
                db.stats().cleanup_failures > before,
                "{engine}: failed directory removal was silently discarded"
            );
            let temp_dir = dir.join(format!("cf-{temp_id}"));
            assert!(
                !env.children(&temp_dir).unwrap().is_empty(),
                "{engine}: setup must leave the orphan directory behind"
            );
        }

        // The machine comes back healthy: reopen reaps the orphan.
        mem_env.clear_fault_injection();
        let db = open_db_engine(engine, &env, dir);
        assert!(
            db.cf("temp").is_none(),
            "{engine}: dropped family stays gone"
        );
        let temp_dir = dir.join(format!("cf-{temp_id}"));
        assert!(
            env.children(&temp_dir).unwrap().is_empty(),
            "{engine}: orphaned directory must be reaped on reopen"
        );
    }
}
