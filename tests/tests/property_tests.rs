//! Property-style tests: random operation sequences applied to the engines
//! must match a reference `BTreeMap` model, and core encodings must
//! round-trip for arbitrary inputs.
//!
//! The cases are generated with a seeded RNG (the workspace builds offline,
//! so there is no `proptest` dependency); every failure therefore reproduces
//! deterministically.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pebblesdb::PebblesDb;
use pebblesdb_common::batch::WriteBatch;
use pebblesdb_common::coding;
use pebblesdb_common::key::{
    compare_internal_keys, encode_internal_key, parse_internal_key, ValueType,
};
use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{ColumnFamilyHandle, Db, KvStore, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

fn tiny_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 8 << 10;
    opts.max_file_size = 8 << 10;
    opts.base_level_bytes = 32 << 10;
    opts.level0_compaction_trigger = 2;
    opts.max_sstables_per_guard = 2;
    opts.top_level_bits = 6;
    opts.bit_decrement = 1;
    opts
}

/// One step of the model-based test.
#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Scan(u16, u8),
}

fn random_op(rng: &mut StdRng) -> Op {
    let key = rng.gen_range(0..512u16);
    match rng.gen_range(0..6u32) {
        0..=3 => {
            let len = rng.gen_range(0..64usize);
            let value: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            Op::Put(key, value)
        }
        4 => Op::Delete(key),
        _ => Op::Scan(key, rng.gen::<u8>()),
    }
}

fn key_of(id: u16) -> Vec<u8> {
    format!("key{id:05}").into_bytes()
}

fn check_engine_against_model(store: &dyn KvStore, ops: &[Op]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(id, value) => {
                store.put(&key_of(*id), value).unwrap();
                model.insert(key_of(*id), value.clone());
            }
            Op::Delete(id) => {
                store.delete(&key_of(*id)).unwrap();
                model.remove(&key_of(*id));
            }
            Op::Scan(id, limit) => {
                let limit = (*limit as usize % 20) + 1;
                let got = store.scan(&key_of(*id), &[], limit).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key_of(*id)..)
                    .take(limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expected, "scan from {id} with limit {limit}");
            }
        }
    }
    // Final full agreement check, both before and after a flush.
    for check_after_flush in [false, true] {
        if check_after_flush {
            store.flush().unwrap();
        }
        for id in 0..512u16 {
            assert_eq!(
                store.get(&key_of(id)).unwrap(),
                model.get(&key_of(id)).cloned(),
                "key {id} (after_flush={check_after_flush})"
            );
        }
        let got = store.scan(b"key", &[], 10_000).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, expected, "full scan (after_flush={check_after_flush})");
    }
}

fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let count = rng.gen_range(1..400usize);
    (0..count).map(|_| random_op(rng)).collect()
}

#[test]
fn pebblesdb_matches_model() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for case in 0..8 {
        let ops = random_ops(&mut rng);
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = PebblesDb::open_with_options(env, Path::new("/prop"), tiny_options()).unwrap();
        eprintln!("case {case}: {} ops", ops.len());
        check_engine_against_model(&store, &ops);
    }
}

#[test]
fn baseline_lsm_matches_model() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for case in 0..8 {
        let ops = random_ops(&mut rng);
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = LsmDb::open_with_options(
            env,
            Path::new("/prop"),
            tiny_options(),
            StorePreset::HyperLevelDb,
        )
        .unwrap();
        eprintln!("case {case}: {} ops", ops.len());
        check_engine_against_model(&store, &ops);
    }
}

/// Model-based differential test under *concurrent* compaction: one thread
/// applies random put/delete/scan sequences against the store and a
/// `BTreeMap` oracle while a churn thread keeps forcing flushes, so the
/// compaction pool (4 workers) constantly reorganizes the tree underneath
/// the reads. Snapshots pinned along the way must keep replaying the oracle
/// state captured at pin time, no matter how many compactions have committed
/// since. Both engines run through the shared chassis with the same seeds.
fn concurrent_compactions_match_model_and_snapshots(
    open_store: impl Fn(Arc<dyn Env>, StoreOptions) -> Arc<dyn KvStore>,
) {
    let mut rng = StdRng::seed_from_u64(0x5eed_0010);
    for case in 0..3 {
        let mut opts = tiny_options();
        opts.compaction_threads = 4;
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = open_store(env, opts);

        let stop = Arc::new(AtomicBool::new(false));
        let churn = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            // Forcing memtable rotations makes level-0 fill up fast, keeping
            // the compaction pool busy for the whole run.
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    store.flush().expect("churn flush must not hit bg_error");
                    std::thread::yield_now();
                }
            })
        };

        let ops: Vec<Op> = (0..600).map(|_| random_op(&mut rng)).collect();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        type PinnedState = (Snapshot, BTreeMap<Vec<u8>, Vec<u8>>);
        let mut pinned: Vec<PinnedState> = Vec::new();
        for (index, op) in ops.iter().enumerate() {
            match op {
                Op::Put(id, value) => {
                    store.put(&key_of(*id), value).unwrap();
                    model.insert(key_of(*id), value.clone());
                }
                Op::Delete(id) => {
                    store.delete(&key_of(*id)).unwrap();
                    model.remove(&key_of(*id));
                }
                Op::Scan(id, limit) => {
                    let limit = (*limit as usize % 20) + 1;
                    let got = store.scan(&key_of(*id), &[], limit).unwrap();
                    let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(key_of(*id)..)
                        .take(limit)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    assert_eq!(got, expected, "case {case}: scan at op {index}");
                }
            }
            if index % 150 == 0 {
                pinned.push((store.snapshot(), model.clone()));
            }
        }
        stop.store(true, Ordering::Release);
        churn.join().unwrap();

        // Every pinned snapshot still replays the oracle state captured at
        // pin time, even though compactions have rewritten the tree since.
        for (pin_index, (snapshot, pinned_model)) in pinned.iter().enumerate() {
            let read_opts = snapshot.read_options();
            for id in 0..512u16 {
                assert_eq!(
                    store.get_opts(&read_opts, &key_of(id)).unwrap(),
                    pinned_model.get(&key_of(id)).cloned(),
                    "case {case}: snapshot {pin_index}, key {id}"
                );
            }
            let got = store.scan_opts(&read_opts, b"key", &[], 10_000).unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> = pinned_model
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(got, expected, "case {case}: snapshot {pin_index} full scan");
        }
        drop(pinned);

        // Final agreement before and after a last full flush.
        for check_after_flush in [false, true] {
            if check_after_flush {
                store.flush().unwrap();
            }
            for id in 0..512u16 {
                assert_eq!(
                    store.get(&key_of(id)).unwrap(),
                    model.get(&key_of(id)).cloned(),
                    "case {case}: key {id} (after_flush={check_after_flush})"
                );
            }
            let got = store.scan(b"key", &[], 10_000).unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(got, expected, "case {case}: full scan");
        }
        assert_eq!(store.stats().memtable_clones, 0);
    }
}

/// The FLSM engine under the concurrent differential harness. Debug builds
/// additionally run `FlsmVersion::validate()` after every concurrent commit
/// (guards sorted and disjoint), via the `debug_assert!` inside
/// `log_and_apply`.
#[test]
fn pebblesdb_concurrent_compactions_match_model_and_snapshots() {
    concurrent_compactions_match_model_and_snapshots(|env, opts| {
        Arc::new(PebblesDb::open_with_options(env, Path::new("/prop-conc"), opts).unwrap())
    });
}

/// The LSM baseline through the *same* chassis code paths (flush thread,
/// worker pool, claim bookkeeping, GC) with the same seeds: its exclusive
/// leveled-compaction policy must behave identically under a 4-worker pool,
/// and snapshots pinned mid-stream must keep replaying their oracle state.
#[test]
fn baseline_lsm_concurrent_compactions_match_model_and_snapshots() {
    concurrent_compactions_match_model_and_snapshots(|env, opts| {
        Arc::new(
            LsmDb::open_with_options(
                env,
                Path::new("/prop-conc"),
                opts,
                StorePreset::HyperLevelDb,
            )
            .unwrap(),
        )
    });
}

/// The concurrent differential harness over **three column families**: one
/// `BTreeMap` oracle per family, random ops routed across them (including
/// cross-family atomic twin-puts), a churn thread forcing flushes so the
/// compaction pool keeps reorganising every family's tree, and snapshots
/// pinned mid-stream. Because all families share one sequence space, a
/// pinned snapshot must replay the oracle state of *every* family as
/// captured at the same instant — cross-family consistency, not just
/// per-family.
fn concurrent_compactions_match_model_across_families(
    open_store: impl Fn(Arc<dyn Env>, StoreOptions) -> Arc<dyn Db>,
) {
    #[derive(Debug, Clone)]
    enum CfOp {
        Put(usize, u16, Vec<u8>),
        Delete(usize, u16),
        Scan(usize, u16, u8),
        /// One atomic batch writing the key into families 0 and 1.
        TwinPut(u16, Vec<u8>),
    }

    let mut rng = StdRng::seed_from_u64(0x5eed_0c0f);
    for case in 0..2 {
        let mut opts = tiny_options();
        opts.compaction_threads = 4;
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = open_store(env, opts);
        let families: Vec<ColumnFamilyHandle> = vec![
            store.default_cf(),
            store.create_cf("alpha").unwrap(),
            store.create_cf("beta").unwrap(),
        ];

        let stop = Arc::new(AtomicBool::new(false));
        let churn = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    store.flush().expect("churn flush must not hit bg_error");
                    std::thread::yield_now();
                }
            })
        };

        let ops: Vec<CfOp> = (0..600)
            .map(|_| {
                let family = rng.gen_range(0..3usize);
                let key = rng.gen_range(0..256u16);
                match rng.gen_range(0..7u32) {
                    0..=2 => {
                        let len = rng.gen_range(0..48usize);
                        CfOp::Put(family, key, (0..len).map(|_| rng.gen::<u8>()).collect())
                    }
                    3 => CfOp::Delete(family, key),
                    4 => CfOp::TwinPut(key, vec![rng.gen::<u8>(); 24]),
                    _ => CfOp::Scan(family, key, rng.gen::<u8>()),
                }
            })
            .collect();

        let mut models: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = vec![BTreeMap::new(); 3];
        type PinnedState = (Snapshot, Vec<BTreeMap<Vec<u8>, Vec<u8>>>);
        let mut pinned: Vec<PinnedState> = Vec::new();
        for (index, op) in ops.iter().enumerate() {
            match op {
                CfOp::Put(family, id, value) => {
                    families[*family].put(&key_of(*id), value).unwrap();
                    models[*family].insert(key_of(*id), value.clone());
                }
                CfOp::Delete(family, id) => {
                    families[*family].delete(&key_of(*id)).unwrap();
                    models[*family].remove(&key_of(*id));
                }
                CfOp::TwinPut(id, value) => {
                    let mut batch = WriteBatch::new();
                    batch.put(&key_of(*id), value);
                    batch.put_cf(families[1].id(), &key_of(*id), value);
                    store.write(batch).unwrap();
                    models[0].insert(key_of(*id), value.clone());
                    models[1].insert(key_of(*id), value.clone());
                }
                CfOp::Scan(family, id, limit) => {
                    let limit = (*limit as usize % 20) + 1;
                    let got = families[*family].scan(&key_of(*id), &[], limit).unwrap();
                    let expected: Vec<(Vec<u8>, Vec<u8>)> = models[*family]
                        .range(key_of(*id)..)
                        .take(limit)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    assert_eq!(got, expected, "case {case}: scan at op {index}");
                }
            }
            if index % 120 == 0 {
                pinned.push((store.snapshot(), models.clone()));
            }
        }
        stop.store(true, Ordering::Release);
        churn.join().unwrap();

        // Each pinned snapshot replays *all three* families' oracle states
        // captured at pin time — one shared sequence, three namespaces.
        for (pin_index, (snapshot, pinned_models)) in pinned.iter().enumerate() {
            let read_opts = snapshot.read_options();
            for (family, model) in pinned_models.iter().enumerate() {
                for id in (0..256u16).step_by(3) {
                    assert_eq!(
                        families[family].get_opts(&read_opts, &key_of(id)).unwrap(),
                        model.get(&key_of(id)).cloned(),
                        "case {case}: snapshot {pin_index}, family {family}, key {id}"
                    );
                }
                let got = families[family]
                    .scan_opts(&read_opts, b"key", &[], 10_000)
                    .unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> =
                    model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                assert_eq!(
                    got, expected,
                    "case {case}: snapshot {pin_index}, family {family} full scan"
                );
            }
        }
        drop(pinned);

        // Final agreement for every family, before and after a full flush.
        for check_after_flush in [false, true] {
            if check_after_flush {
                store.flush().unwrap();
            }
            for (family, model) in models.iter().enumerate() {
                let got = families[family].scan(b"key", &[], 10_000).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> =
                    model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                assert_eq!(
                    got, expected,
                    "case {case}: family {family} (after_flush={check_after_flush})"
                );
            }
        }
        assert_eq!(store.stats().memtable_clones, 0);
        assert_eq!(store.stats().num_column_families, 3);
    }
}

/// The FLSM engine under the three-family concurrent differential harness.
#[test]
fn pebblesdb_three_family_differential_with_shared_snapshots() {
    concurrent_compactions_match_model_across_families(|env, opts| {
        Arc::new(PebblesDb::open_with_options(env, Path::new("/prop-cf"), opts).unwrap())
    });
}

/// The LSM baseline through the same chassis code paths and seeds.
#[test]
fn baseline_lsm_three_family_differential_with_shared_snapshots() {
    concurrent_compactions_match_model_across_families(|env, opts| {
        Arc::new(
            LsmDb::open_with_options(env, Path::new("/prop-cf"), opts, StorePreset::HyperLevelDb)
                .unwrap(),
        )
    });
}

#[test]
fn varint_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for _ in 0..2000 {
        // Cover every bit width, not just large values.
        let value = rng.gen::<u64>() >> rng.gen_range(0..64u32);
        let mut buf = Vec::new();
        coding::put_varint64(&mut buf, value);
        let (decoded, used) = coding::decode_varint64(&buf).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(used, buf.len());
        assert_eq!(coding::varint_length(value), buf.len());
    }
}

#[test]
fn internal_keys_roundtrip_and_order() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for _ in 0..2000 {
        let len = rng.gen_range(0..40usize);
        let user_key: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let seq = rng.gen::<u64>() >> 8;
        let other_seq = rng.gen::<u64>() >> 8;

        let encoded = encode_internal_key(&user_key, seq, ValueType::Value);
        let parsed = parse_internal_key(&encoded).unwrap();
        assert_eq!(parsed.user_key, user_key.as_slice());
        assert_eq!(parsed.sequence, seq);

        // Same user key: higher sequence numbers sort first.
        let other = encode_internal_key(&user_key, other_seq, ValueType::Value);
        let ordering = compare_internal_keys(&encoded, &other);
        assert_eq!(ordering, other_seq.cmp(&seq));
    }
}

#[test]
fn write_batches_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0005);
    for _ in 0..200 {
        let count = rng.gen_range(0..30usize);
        let entries: Vec<(Vec<u8>, Vec<u8>, bool)> = (0..count)
            .map(|_| {
                let key: Vec<u8> = (0..rng.gen_range(1..20usize))
                    .map(|_| rng.gen::<u8>())
                    .collect();
                let value: Vec<u8> = (0..rng.gen_range(0..50usize))
                    .map(|_| rng.gen::<u8>())
                    .collect();
                (key, value, rng.gen_bool(0.3))
            })
            .collect();

        let mut batch = WriteBatch::new();
        for (key, value, is_delete) in &entries {
            if *is_delete {
                batch.delete(key);
            } else {
                batch.put(key, value);
            }
        }
        batch.set_sequence(42);
        let restored = WriteBatch::from_contents(batch.contents().to_vec()).unwrap();
        assert_eq!(restored.verify().unwrap() as usize, entries.len());
        for (record, (key, value, is_delete)) in restored.iter().zip(entries.iter()) {
            let record = record.unwrap();
            assert_eq!(record.key, key.as_slice());
            if *is_delete {
                assert_eq!(record.value_type, ValueType::Deletion);
            } else {
                assert_eq!(record.value, value.as_slice());
            }
        }
    }
}
