//! Property-based tests: random operation sequences applied to the engines
//! must match a reference `BTreeMap` model, and core encodings must
//! round-trip for arbitrary inputs.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use pebblesdb::PebblesDb;
use pebblesdb_common::batch::WriteBatch;
use pebblesdb_common::coding;
use pebblesdb_common::key::{compare_internal_keys, encode_internal_key, parse_internal_key, ValueType};
use pebblesdb_common::{KvStore, StoreOptions, StorePreset};
use pebblesdb_env::{Env, MemEnv};
use pebblesdb_lsm::LsmDb;

fn tiny_options() -> StoreOptions {
    let mut opts = StoreOptions::default();
    opts.write_buffer_size = 8 << 10;
    opts.max_file_size = 8 << 10;
    opts.base_level_bytes = 32 << 10;
    opts.level0_compaction_trigger = 2;
    opts.max_sstables_per_guard = 2;
    opts.top_level_bits = 6;
    opts.bit_decrement = 1;
    opts
}

/// One step of the model-based test.
#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Scan(u16, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(k, n)| Op::Scan(k % 512, n)),
    ]
}

fn key_of(id: u16) -> Vec<u8> {
    format!("key{id:05}").into_bytes()
}

fn check_engine_against_model(store: &dyn KvStore, ops: &[Op]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(id, value) => {
                store.put(&key_of(*id), value).unwrap();
                model.insert(key_of(*id), value.clone());
            }
            Op::Delete(id) => {
                store.delete(&key_of(*id)).unwrap();
                model.remove(&key_of(*id));
            }
            Op::Scan(id, limit) => {
                let limit = (*limit as usize % 20) + 1;
                let got = store.scan(&key_of(*id), &[], limit).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key_of(*id)..)
                    .take(limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expected, "scan from {id} with limit {limit}");
            }
        }
    }
    // Final full agreement check, both before and after a flush.
    for check_after_flush in [false, true] {
        if check_after_flush {
            store.flush().unwrap();
        }
        for id in 0..512u16 {
            assert_eq!(
                store.get(&key_of(id)).unwrap(),
                model.get(&key_of(id)).cloned(),
                "key {id} (after_flush={check_after_flush})"
            );
        }
        let got = store.scan(b"key", &[], 10_000).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, expected, "full scan (after_flush={check_after_flush})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn pebblesdb_matches_model(ops in vec(op_strategy(), 1..400)) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = PebblesDb::open_with_options(env, Path::new("/prop"), tiny_options()).unwrap();
        check_engine_against_model(&store, &ops);
    }

    #[test]
    fn baseline_lsm_matches_model(ops in vec(op_strategy(), 1..400)) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let store = LsmDb::open_with_options(
            env,
            Path::new("/prop"),
            tiny_options(),
            StorePreset::HyperLevelDb,
        )
        .unwrap();
        check_engine_against_model(&store, &ops);
    }

    #[test]
    fn varint_roundtrips(value in any::<u64>()) {
        let mut buf = Vec::new();
        coding::put_varint64(&mut buf, value);
        let (decoded, used) = coding::decode_varint64(&buf).unwrap();
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(coding::varint_length(value), buf.len());
    }

    #[test]
    fn internal_keys_roundtrip_and_order(
        user_key in vec(any::<u8>(), 0..40),
        seq in 0u64..(1 << 56),
        other_seq in 0u64..(1 << 56),
    ) {
        let encoded = encode_internal_key(&user_key, seq, ValueType::Value);
        let parsed = parse_internal_key(&encoded).unwrap();
        prop_assert_eq!(parsed.user_key, user_key.as_slice());
        prop_assert_eq!(parsed.sequence, seq);

        // Same user key: higher sequence numbers sort first.
        let other = encode_internal_key(&user_key, other_seq, ValueType::Value);
        let ordering = compare_internal_keys(&encoded, &other);
        prop_assert_eq!(ordering, other_seq.cmp(&seq));
    }

    #[test]
    fn write_batches_roundtrip(entries in vec((vec(any::<u8>(), 1..20), vec(any::<u8>(), 0..50), any::<bool>()), 0..30)) {
        let mut batch = WriteBatch::new();
        for (key, value, is_delete) in &entries {
            if *is_delete {
                batch.delete(key);
            } else {
                batch.put(key, value);
            }
        }
        batch.set_sequence(42);
        let restored = WriteBatch::from_contents(batch.contents().to_vec()).unwrap();
        prop_assert_eq!(restored.verify().unwrap() as usize, entries.len());
        for (record, (key, value, is_delete)) in restored.iter().zip(entries.iter()) {
            let record = record.unwrap();
            prop_assert_eq!(record.key, key.as_slice());
            if *is_delete {
                prop_assert_eq!(record.value_type, ValueType::Deletion);
            } else {
                prop_assert_eq!(record.value, value.as_slice());
            }
        }
    }
}
